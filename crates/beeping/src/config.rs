//! Simulation configuration and fault injection plans.

use std::sync::Arc;

use crate::json::Json;
use crate::scenario::{scenario_eq, Scenario};
use crate::TraceLevel;

/// Fault-injection plan for a simulation run.
///
/// The paper's algorithm is designed for a reliable synchronous network;
/// §6 argues the approach is robust to perturbations. This plan injects two
/// realistic perturbations so that claim can be measured:
///
/// * **message loss** — each beep delivery over each directed edge is
///   dropped independently with probability `message_loss`;
/// * **late wake-ups** — node `v` stays [`Asleep`](crate::NodeStatus::Asleep)
///   (neither beeping nor hearing) until round `wake_rounds[v]`.
///
/// Late wake-ups can break correctness (a late node cannot know a silent
/// neighbour is already in the MIS); the `mis_keeps_beeping` repair in
/// [`SimConfig`] makes MIS members re-announce every round, restoring
/// safety at the cost of extra signals.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultPlan {
    /// Probability that an individual beep delivery is lost (per directed
    /// edge, per exchange). Zero means a reliable network.
    pub message_loss: f64,
    /// Per-node wake-up rounds; empty means all nodes start awake. Nodes
    /// beyond the vector's length start awake.
    pub wake_rounds: Vec<u32>,
}

/// Rejection reason from [`FaultPlan::validate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlanError {
    /// `message_loss` was NaN — comparing it against a random draw would
    /// silently deliver everything.
    NanLoss,
    /// `message_loss` was outside `[0, 1]`.
    LossOutOfRange(
        /// The offending value.
        f64,
    ),
}

impl core::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FaultPlanError::NanLoss => write!(f, "message loss probability must not be NaN"),
            FaultPlanError::LossOutOfRange(v) => {
                write!(f, "message loss probability must be in [0, 1], got {v}")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

impl FaultPlan {
    /// A reliable, all-awake network (the paper's setting).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Checks the plan for nonsense values instead of silently sampling
    /// garbage: `message_loss` must be a real probability in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// [`FaultPlanError::NanLoss`] for NaN, and
    /// [`FaultPlanError::LossOutOfRange`] for values outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        if self.message_loss.is_nan() {
            return Err(FaultPlanError::NanLoss);
        }
        if !(0.0..=1.0).contains(&self.message_loss) {
            return Err(FaultPlanError::LossOutOfRange(self.message_loss));
        }
        Ok(())
    }

    /// Whether this plan injects no faults at all.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.message_loss == 0.0 && self.wake_rounds.iter().all(|&w| w == 0)
    }

    /// Wake round for `node` (0 when unspecified).
    #[must_use]
    pub fn wake_round(&self, node: u32) -> u32 {
        self.wake_rounds.get(node as usize).copied().unwrap_or(0)
    }
}

/// Which implementation computes the per-exchange beep propagation
/// (`heard[v] = OR of beeps over v's neighbours`).
///
/// Both kernels produce **bit-identical** `heard` vectors and therefore
/// identical [`RunOutcome`](crate::RunOutcome)s; the choice only affects
/// speed. `tests/kernel_equivalence.rs` pins the equivalence with property
/// tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PropagationKernel {
    /// Reference implementation: push from each beeping node to its
    /// neighbours over `Vec<bool>` buffers, one delivery at a time.
    Scalar,
    /// Packed `u64` bitset kernel (the default): beeps live one bit per
    /// node, and each exchange picks push or pull direction from the beep
    /// density — pulling walks the CSR adjacency word-at-a-time with an
    /// early exit on the first beeping word.
    ///
    /// With [`RngMode::Counter`], the bitset kernel also runs lossy
    /// (`message_loss > 0`) configurations: counter-keyed loss draws are
    /// pure functions of `(edge, round, exchange)`, so no shared stream
    /// order constrains the kernel. Under the legacy [`RngMode::Stream`],
    /// lossy runs still take the scalar reference path (per-delivery loss
    /// draws must consume the fault RNG in reference order), and so do
    /// delivery-perturbing/churning scenario runs in either mode — the
    /// substitution is no longer silent: the kernel that actually ran is
    /// recorded as [`RunOutcome::kernel_used`](crate::RunOutcome::kernel_used).
    #[default]
    Bitset,
}

impl PropagationKernel {
    /// The canonical wire spelling of this kernel (`scalar` / `bitset`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PropagationKernel::Scalar => "scalar",
            PropagationKernel::Bitset => "bitset",
        }
    }

    /// Parses a canonical wire spelling written by [`Self::name`].
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "scalar" => Some(PropagationKernel::Scalar),
            "bitset" => Some(PropagationKernel::Bitset),
            _ => None,
        }
    }
}

/// How the simulator derives its random draws (see [`crate::rng`]).
///
/// Both modes are deterministic per master seed; they define *different*
/// (equally valid) random sequences, so switching modes changes individual
/// run outcomes while preserving every statistical property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RngMode {
    /// Legacy stateful streams (the default): each node consumes its own
    /// [`node_rng`](crate::rng::node_rng) stream across rounds, and
    /// per-delivery loss draws consume one shared fault stream in the
    /// scalar reference order. Committed replay artifacts (the fuzz
    /// corpus, pinned determinism digests) were recorded in this mode and
    /// stay byte-identical under it.
    #[default]
    Stream,
    /// Stateless counter-based draws: every draw is
    /// [`mix`](crate::rng::mix)`(master, domain, …)` keyed by its
    /// coordinates — `(node, round)` for process draws,
    /// `(sender, receiver, round, exchange)` for loss draws. Draw order is
    /// irrelevant by construction, which legalises intra-run sharding
    /// ([`SimConfig::shards`]) and the bitset kernel on lossy runs.
    Counter,
}

impl RngMode {
    /// The canonical wire spelling of this mode (`stream` / `counter`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RngMode::Stream => "stream",
            RngMode::Counter => "counter",
        }
    }

    /// Parses a canonical wire spelling written by [`Self::name`].
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "stream" => Some(RngMode::Stream),
            "counter" => Some(RngMode::Counter),
            _ => None,
        }
    }
}

/// Configuration for a [`Simulator`](crate::Simulator) run.
///
/// # Examples
///
/// ```
/// use mis_beeping::{PropagationKernel, SimConfig, TraceLevel};
///
/// let cfg = SimConfig::default()
///     .with_max_rounds(10_000)
///     .with_trace(TraceLevel::Rounds)
///     .with_active_series(true)
///     .with_kernel(PropagationKernel::Scalar);
/// assert_eq!(cfg.max_rounds, 10_000);
/// assert_eq!(cfg.kernel, PropagationKernel::Scalar);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Hard cap on simulated rounds; the run reports
    /// non-termination if the cap is reached. The default (1 million) is
    /// far beyond anything the `O(log n)` algorithms need.
    pub max_rounds: u32,
    /// Fault-injection plan (defaults to none).
    pub faults: FaultPlan,
    /// When `true`, nodes already in the MIS keep beeping in **both**
    /// exchanges of every subsequent round: the first-exchange heartbeat
    /// inhibits late wakers from claiming next to an MIS member, and the
    /// second-exchange heartbeat lets them terminate as covered. This
    /// repairs correctness under late wake-ups and mirrors the persistent
    /// lateral inhibition of SOP cells in the biological system.
    pub mis_keeps_beeping: bool,
    /// Per-round event recording level.
    pub trace: TraceLevel,
    /// Record the number of active nodes after every round (time-series
    /// used by experiments).
    pub record_active_series: bool,
    /// Which beep-propagation implementation to use (defaults to the
    /// packed [`PropagationKernel::Bitset`] kernel).
    pub kernel: PropagationKernel,
    /// RNG derivation discipline (defaults to the legacy
    /// [`RngMode::Stream`], which keeps existing replay artifacts
    /// byte-identical).
    pub rng: RngMode,
    /// Intra-run shard count for the propagation phase: the bitset
    /// kernel's pull direction splits its listener range across this many
    /// scoped worker threads. `1` (the default) runs sequentially; `0`
    /// means one shard per available core. Requires
    /// [`RngMode::Counter`] to take effect (stream draws are
    /// order-coupled), and the outcomes are bit-identical for every shard
    /// count — `tests/sharding_equivalence.rs` pins this.
    pub shards: usize,
    /// Optional composable adversary (defaults to none). A scenario
    /// layers on top of `faults`: wake rounds merge by taking the later
    /// of the two, and scenario loss/delay/churn apply in addition to
    /// the plan's uniform loss. Runs with a delivery-perturbing or
    /// churning scenario use the scalar reference kernel, like lossy
    /// [`FaultPlan`] runs.
    pub scenario: Option<Arc<dyn Scenario>>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            max_rounds: 1_000_000,
            faults: FaultPlan::none(),
            mis_keeps_beeping: false,
            trace: TraceLevel::Off,
            record_active_series: false,
            kernel: PropagationKernel::default(),
            rng: RngMode::default(),
            shards: 1,
            scenario: None,
        }
    }
}

impl PartialEq for SimConfig {
    fn eq(&self, other: &Self) -> bool {
        // Scenarios compare by canonical spec (equal specs imply
        // identical behaviour), which keeps this an equivalence relation.
        self.max_rounds == other.max_rounds
            && self.faults == other.faults
            && self.mis_keeps_beeping == other.mis_keeps_beeping
            && self.trace == other.trace
            && self.record_active_series == other.record_active_series
            && self.kernel == other.kernel
            && self.rng == other.rng
            && self.shards == other.shards
            && scenario_eq(self.scenario.as_ref(), other.scenario.as_ref())
    }
}

impl SimConfig {
    /// Replaces the round cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_rounds` is zero.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u32) -> Self {
        assert!(max_rounds > 0, "round cap must be positive");
        self.max_rounds = max_rounds;
        self
    }

    /// Replaces the fault plan.
    ///
    /// # Panics
    ///
    /// Panics if [`FaultPlan::validate`] rejects the plan (`message_loss`
    /// NaN or outside `[0, 1]`).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        if let Err(e) = faults.validate() {
            panic!("{e}");
        }
        self.faults = faults;
        self
    }

    /// Attaches a composable adversary (see
    /// [`scenario`](crate::scenario)).
    #[must_use]
    pub fn with_scenario(mut self, scenario: Arc<dyn Scenario>) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Enables or disables the MIS re-announcement repair.
    #[must_use]
    pub fn with_mis_keeps_beeping(mut self, on: bool) -> Self {
        self.mis_keeps_beeping = on;
        self
    }

    /// Sets the trace level.
    #[must_use]
    pub fn with_trace(mut self, level: TraceLevel) -> Self {
        self.trace = level;
        self
    }

    /// Enables recording the active-node time series.
    #[must_use]
    pub fn with_active_series(mut self, on: bool) -> Self {
        self.record_active_series = on;
        self
    }

    /// Selects the beep-propagation kernel.
    #[must_use]
    pub fn with_kernel(mut self, kernel: PropagationKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Selects the RNG derivation discipline.
    #[must_use]
    pub fn with_rng_mode(mut self, rng: RngMode) -> Self {
        self.rng = rng;
        self
    }

    /// Sets the intra-run shard count (`0` = one shard per core) and,
    /// for any value other than `1`, switches to [`RngMode::Counter`] —
    /// sharding is only legal when draws are order-independent.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        if shards != 1 {
            self.rng = RngMode::Counter;
        }
        self
    }

    /// The canonical JSON tree of this configuration: every field
    /// materialised (defaults included), keys in a fixed alphabetical
    /// order, scenarios by their canonical spec. Two configs are equal
    /// ([`PartialEq`]) **iff** their canonical JSON renders to the same
    /// text, which is what makes the tree usable as a content-address
    /// component — the serving tier keys its result cache on it.
    ///
    /// # Examples
    ///
    /// ```
    /// use mis_beeping::SimConfig;
    ///
    /// let a = SimConfig::default().with_max_rounds(10).with_shards(2);
    /// let b = SimConfig::default().with_shards(2).with_max_rounds(10);
    /// assert_eq!(a.canonical_json().render(), b.canonical_json().render());
    /// assert_ne!(
    ///     a.canonical_json().render(),
    ///     SimConfig::default().canonical_json().render()
    /// );
    /// ```
    #[must_use]
    pub fn canonical_json(&self) -> Json {
        Json::Obj(vec![
            (
                "faults".to_owned(),
                Json::Obj(vec![
                    (
                        "message_loss".to_owned(),
                        Json::Num(self.faults.message_loss),
                    ),
                    (
                        "wake_rounds".to_owned(),
                        Json::Arr(
                            self.faults
                                .wake_rounds
                                .iter()
                                .map(|&w| Json::Num(f64::from(w)))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "kernel".to_owned(),
                Json::Str(self.kernel.name().to_owned()),
            ),
            (
                "max_rounds".to_owned(),
                Json::Num(f64::from(self.max_rounds)),
            ),
            (
                "mis_keeps_beeping".to_owned(),
                Json::Bool(self.mis_keeps_beeping),
            ),
            (
                "record_active_series".to_owned(),
                Json::Bool(self.record_active_series),
            ),
            ("rng".to_owned(), Json::Str(self.rng.name().to_owned())),
            (
                "scenario".to_owned(),
                match &self.scenario {
                    // Scenario specs are already canonical compact JSON.
                    Some(s) => Json::parse(&s.spec_json()).unwrap_or(Json::Null),
                    None => Json::Null,
                },
            ),
            ("shards".to_owned(), Json::Num(self.shards as f64)),
            (
                "trace".to_owned(),
                Json::Str(
                    match self.trace {
                        TraceLevel::Off => "off",
                        TraceLevel::Rounds => "rounds",
                    }
                    .to_owned(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fault_free() {
        let cfg = SimConfig::default();
        assert!(cfg.faults.is_none());
        assert!(!cfg.mis_keeps_beeping);
        assert_eq!(cfg.trace, TraceLevel::Off);
        assert_eq!(cfg.kernel, PropagationKernel::Bitset);
        assert_eq!(cfg.rng, RngMode::Stream);
        assert_eq!(cfg.shards, 1);
    }

    #[test]
    fn rng_mode_and_shards_are_selectable() {
        let cfg = SimConfig::default().with_rng_mode(RngMode::Counter);
        assert_eq!(cfg.rng, RngMode::Counter);
        assert_eq!(cfg.shards, 1);
        // Any shard count other than 1 implies counter draws.
        let sharded = SimConfig::default().with_shards(4);
        assert_eq!(sharded.shards, 4);
        assert_eq!(sharded.rng, RngMode::Counter);
        let auto = SimConfig::default().with_shards(0);
        assert_eq!(auto.shards, 0);
        assert_eq!(auto.rng, RngMode::Counter);
        // shards = 1 is the sequential no-op and leaves the mode alone.
        let seq = SimConfig::default().with_shards(1);
        assert_eq!(seq.rng, RngMode::Stream);
    }

    #[test]
    fn rng_mode_and_shards_affect_equality() {
        let base = SimConfig::default();
        assert_ne!(base, base.clone().with_rng_mode(RngMode::Counter));
        assert_ne!(base, base.clone().with_shards(2));
        assert_eq!(base, base.clone().with_shards(1));
    }

    #[test]
    fn kernel_is_selectable() {
        let cfg = SimConfig::default().with_kernel(PropagationKernel::Scalar);
        assert_eq!(cfg.kernel, PropagationKernel::Scalar);
        let back = cfg.with_kernel(PropagationKernel::Bitset);
        assert_eq!(back.kernel, PropagationKernel::Bitset);
    }

    #[test]
    fn fault_plan_queries() {
        let plan = FaultPlan {
            message_loss: 0.0,
            wake_rounds: vec![0, 5, 2],
        };
        assert!(!plan.is_none());
        assert_eq!(plan.wake_round(1), 5);
        assert_eq!(plan.wake_round(99), 0);
        assert!(FaultPlan::none().is_none());
    }

    #[test]
    fn builder_chain() {
        let cfg = SimConfig::default()
            .with_max_rounds(5)
            .with_mis_keeps_beeping(true)
            .with_active_series(true)
            .with_faults(FaultPlan {
                message_loss: 0.1,
                wake_rounds: vec![],
            });
        assert_eq!(cfg.max_rounds, 5);
        assert!(cfg.mis_keeps_beeping);
        assert!(cfg.record_active_series);
        assert_eq!(cfg.faults.message_loss, 0.1);
    }

    #[test]
    #[should_panic(expected = "round cap")]
    fn zero_round_cap_panics() {
        let _ = SimConfig::default().with_max_rounds(0);
    }

    fn loss_plan(message_loss: f64) -> FaultPlan {
        FaultPlan {
            message_loss,
            wake_rounds: vec![],
        }
    }

    #[test]
    fn validate_accepts_boundary_probabilities() {
        assert_eq!(loss_plan(0.0).validate(), Ok(()));
        assert_eq!(loss_plan(1.0).validate(), Ok(()));
        assert_eq!(loss_plan(0.5).validate(), Ok(()));
        // The builder accepts the full closed interval too.
        let cfg = SimConfig::default().with_faults(loss_plan(1.0));
        assert_eq!(cfg.faults.message_loss, 1.0);
    }

    #[test]
    fn validate_rejects_out_of_range_loss() {
        assert_eq!(
            loss_plan(1.5).validate(),
            Err(FaultPlanError::LossOutOfRange(1.5))
        );
        assert_eq!(
            loss_plan(-0.1).validate(),
            Err(FaultPlanError::LossOutOfRange(-0.1))
        );
        assert_eq!(
            loss_plan(f64::INFINITY).validate(),
            Err(FaultPlanError::LossOutOfRange(f64::INFINITY))
        );
        let msg = loss_plan(2.0).validate().unwrap_err().to_string();
        assert!(msg.contains("[0, 1]"), "{msg}");
    }

    #[test]
    fn validate_rejects_nan_loss() {
        assert_eq!(loss_plan(f64::NAN).validate(), Err(FaultPlanError::NanLoss));
    }

    #[test]
    #[should_panic(expected = "message loss")]
    fn bad_loss_probability_panics() {
        let _ = SimConfig::default().with_faults(loss_plan(1.5));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_loss_probability_panics() {
        let _ = SimConfig::default().with_faults(loss_plan(f64::NAN));
    }

    #[test]
    fn kernel_and_rng_names_round_trip() {
        for k in [PropagationKernel::Scalar, PropagationKernel::Bitset] {
            assert_eq!(PropagationKernel::parse(k.name()), Some(k));
        }
        for r in [RngMode::Stream, RngMode::Counter] {
            assert_eq!(RngMode::parse(r.name()), Some(r));
        }
        assert_eq!(PropagationKernel::parse("simd"), None);
        assert_eq!(RngMode::parse("hybrid"), None);
    }

    #[test]
    fn canonical_json_is_deterministic_and_total() {
        let cfg = SimConfig::default()
            .with_max_rounds(123)
            .with_mis_keeps_beeping(true)
            .with_kernel(PropagationKernel::Scalar)
            .with_shards(3)
            .with_faults(FaultPlan {
                message_loss: 0.25,
                wake_rounds: vec![0, 4],
            });
        let text = cfg.canonical_json().render();
        // Round-trips through the parser and re-renders identically.
        assert_eq!(Json::parse(&text).unwrap().render(), text);
        // Every outcome-bearing knob is present.
        for key in [
            "faults",
            "kernel",
            "max_rounds",
            "mis_keeps_beeping",
            "record_active_series",
            "rng",
            "scenario",
            "shards",
            "trace",
        ] {
            assert!(
                text.contains(&format!("\"{key}\"")),
                "missing {key}: {text}"
            );
        }
        assert!(text.contains("\"scalar\""));
        assert!(text.contains("\"counter\""));
    }

    #[test]
    fn canonical_json_separates_distinct_configs() {
        let base = SimConfig::default();
        let texts = [
            base.canonical_json().render(),
            base.clone().with_max_rounds(5).canonical_json().render(),
            base.clone()
                .with_kernel(PropagationKernel::Scalar)
                .canonical_json()
                .render(),
            base.clone()
                .with_rng_mode(RngMode::Counter)
                .canonical_json()
                .render(),
            base.clone().with_shards(4).canonical_json().render(),
            base.clone()
                .with_scenario(Arc::new(crate::scenario::ScenarioSpec::uniform_loss(
                    1, 0.1,
                )))
                .canonical_json()
                .render(),
        ];
        for (i, a) in texts.iter().enumerate() {
            for b in texts.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        // Equal configs render equal canonical text.
        assert_eq!(
            base.canonical_json().render(),
            SimConfig::default().canonical_json().render()
        );
    }

    #[test]
    fn scenario_affects_config_equality() {
        use crate::scenario::ScenarioSpec;

        let base = SimConfig::default();
        assert_eq!(base, base.clone());
        let a = base
            .clone()
            .with_scenario(Arc::new(ScenarioSpec::uniform_loss(1, 0.1)));
        let same = base
            .clone()
            .with_scenario(Arc::new(ScenarioSpec::uniform_loss(1, 0.1)));
        let diff = base
            .clone()
            .with_scenario(Arc::new(ScenarioSpec::uniform_loss(2, 0.1)));
        assert_eq!(a, same);
        assert_ne!(a, diff);
        assert_ne!(a, base);
    }
}
