//! Core model types: node status, round verdicts, network information.

use core::fmt;

/// Lifecycle state of a node in the simulator, mirroring the automaton of
/// Figure 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NodeStatus {
    /// Participating: may beep and listen.
    Active,
    /// Joined the independent set; inactive (terminal).
    InMis,
    /// A neighbour joined the independent set; inactive (terminal).
    Covered,
    /// Not yet woken (fault injection); neither beeps nor listens.
    Asleep,
}

impl NodeStatus {
    /// Whether the node has reached a terminal state.
    #[must_use]
    pub fn is_inactive(self) -> bool {
        matches!(self, NodeStatus::InMis | NodeStatus::Covered)
    }
}

impl fmt::Display for NodeStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeStatus::Active => "active",
            NodeStatus::InMis => "in-MIS",
            NodeStatus::Covered => "covered",
            NodeStatus::Asleep => "asleep",
        };
        f.write_str(s)
    }
}

/// A node's decision at the end of a round, returned by
/// [`BeepingProcess::end_round`](crate::BeepingProcess::end_round).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Verdict {
    /// Remain active into the next round.
    Continue,
    /// Join the independent set and become inactive.
    JoinMis,
    /// A neighbour joined; become inactive as a covered node.
    Covered,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::Continue => "continue",
            Verdict::JoinMis => "join-MIS",
            Verdict::Covered => "covered",
        };
        f.write_str(s)
    }
}

/// Global network facts available to a [`ProcessFactory`](crate::ProcessFactory)
/// when instantiating per-node processes.
///
/// The paper's feedback algorithm ignores all of this (its nodes are
/// anonymous and uninformed); the original Science'11 schedule of Afek et
/// al. needs `node_count` and `max_degree`, which is exactly why it is
/// interesting to compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetworkInfo {
    /// Total number of nodes `n`.
    pub node_count: usize,
    /// Maximum degree Δ of the graph.
    pub max_degree: usize,
}

impl fmt::Display for NetworkInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={}, Δ={}", self.node_count, self.max_degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_statuses() {
        assert!(NodeStatus::InMis.is_inactive());
        assert!(NodeStatus::Covered.is_inactive());
        assert!(!NodeStatus::Active.is_inactive());
        assert!(!NodeStatus::Asleep.is_inactive());
    }

    #[test]
    fn displays_are_nonempty() {
        for s in [
            NodeStatus::Active,
            NodeStatus::InMis,
            NodeStatus::Covered,
            NodeStatus::Asleep,
        ] {
            assert!(!s.to_string().is_empty());
        }
        for v in [Verdict::Continue, Verdict::JoinMis, Verdict::Covered] {
            assert!(!v.to_string().is_empty());
        }
        let info = NetworkInfo {
            node_count: 5,
            max_degree: 2,
        };
        assert!(info.to_string().contains("n=5"));
    }
}
