//! Deterministic per-node randomness derivation.
//!
//! Every simulation is reproducible from a single 64-bit master seed. Each
//! node receives its own [`SmallRng`] stream derived with SplitMix64, so
//! results are independent of iteration order and thread count.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: a fast, well-mixed 64-bit hash.
///
/// # Examples
///
/// ```
/// let a = mis_beeping::rng::splitmix64(1);
/// let b = mis_beeping::rng::splitmix64(2);
/// assert_ne!(a, b);
/// ```
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives the seed for `node`'s private stream from a master seed.
///
/// Distinct `(master, node)` pairs map to distinct, decorrelated seeds.
#[must_use]
pub fn node_seed(master: u64, node: u32) -> u64 {
    splitmix64(master ^ splitmix64(0x6E6F_6465_0000_0000 | u64::from(node)))
}

/// Constructs `node`'s private random stream.
#[must_use]
pub fn node_rng(master: u64, node: u32) -> SmallRng {
    SmallRng::seed_from_u64(node_seed(master, node))
}

/// Derives an independent seed for trial `trial` of an experiment.
///
/// # Examples
///
/// ```
/// use mis_beeping::rng::trial_seed;
/// assert_ne!(trial_seed(7, 0), trial_seed(7, 1));
/// assert_eq!(trial_seed(7, 3), trial_seed(7, 3));
/// ```
#[must_use]
pub fn trial_seed(master: u64, trial: u64) -> u64 {
    splitmix64(master ^ splitmix64(0x7472_6961_6C00_0000 ^ trial))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(42), splitmix64(42));
        // Consecutive inputs map far apart (any fixed bit differs w.h.p.).
        let outs: Vec<u64> = (0..64).map(splitmix64).collect();
        let mut sorted = outs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "collision in splitmix64 outputs");
    }

    #[test]
    fn node_seeds_distinct_across_nodes_and_masters() {
        let mut seen = std::collections::HashSet::new();
        for master in 0..4u64 {
            for node in 0..64u32 {
                assert!(seen.insert(node_seed(master, node)));
            }
        }
    }

    #[test]
    fn node_rng_streams_differ() {
        let mut a = node_rng(9, 0);
        let mut b = node_rng(9, 1);
        let xs: Vec<u64> = (0..4).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn node_rng_reproducible() {
        let mut a = node_rng(5, 3);
        let mut b = node_rng(5, 3);
        for _ in 0..8 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn trial_seeds_distinct() {
        let mut seen = std::collections::HashSet::new();
        for t in 0..256 {
            assert!(seen.insert(trial_seed(1, t)));
        }
    }
}
