//! Deterministic randomness derivation: per-node streams and stateless
//! counter draws.
//!
//! Every simulation is reproducible from a single 64-bit master seed. Two
//! derivation disciplines coexist (selected per run by
//! [`RngMode`](crate::RngMode)):
//!
//! * **stream** — each node receives its own [`SmallRng`] stream derived
//!   with SplitMix64 ([`node_rng`]); results are independent of iteration
//!   order across *nodes*, but any draw shared between nodes (such as
//!   per-delivery loss) must consume one shared stream in a pinned
//!   reference order.
//! * **counter** — every draw is a pure hash of its coordinates via
//!   [`mix`]`(seed, domain, a, b, c)`: the answer for one `(node, round)`
//!   or `(edge, round, exchange)` query never depends on which other
//!   queries were made, or in what order, or on which thread. This is what
//!   makes intra-run sharding and the bitset kernel on lossy runs legal.
//!
//! The domain constants below keep the counter streams disjoint; the
//! `pinned_*` regression tests at the bottom freeze every derivation that
//! replay artifacts depend on.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Domain tag for the shared fault-injection stream seed (the stream-mode
/// `fault_rng` consumed by per-delivery loss draws in reference order).
pub const DOM_FAULT_STREAM: u64 = 0xFA17_0000_0000_0001;
/// Domain tag for counter-mode per-delivery loss draws, keyed by
/// `(sender, receiver, slot)` where `slot = round * 2 + exchange`.
pub const DOM_FAULT_LOSS: u64 = 0xFA17_0000_0000_0002;
/// Domain tag for counter-mode per-`(node, round)` process streams.
pub const DOM_NODE_ROUND: u64 = 0x6E52_6F75_6E64_0001;

/// SplitMix64 finalizer: a fast, well-mixed 64-bit hash.
///
/// # Examples
///
/// ```
/// let a = mis_beeping::rng::splitmix64(1);
/// let b = mis_beeping::rng::splitmix64(2);
/// assert_ne!(a, b);
/// ```
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives the seed for `node`'s private stream from a master seed.
///
/// Distinct `(master, node)` pairs map to distinct, decorrelated seeds.
#[must_use]
pub fn node_seed(master: u64, node: u32) -> u64 {
    // detlint: allow(D02) -- this IS the blessed derivation primitive the rule points at
    splitmix64(master ^ splitmix64(0x6E6F_6465_0000_0000 | u64::from(node)))
}

/// Constructs `node`'s private random stream.
#[must_use]
pub fn node_rng(master: u64, node: u32) -> SmallRng {
    SmallRng::seed_from_u64(node_seed(master, node))
}

/// Derives an independent seed for trial `trial` of an experiment.
///
/// # Examples
///
/// ```
/// use mis_beeping::rng::trial_seed;
/// assert_ne!(trial_seed(7, 0), trial_seed(7, 1));
/// assert_eq!(trial_seed(7, 3), trial_seed(7, 3));
/// ```
#[must_use]
pub fn trial_seed(master: u64, trial: u64) -> u64 {
    // detlint: allow(D02) -- this IS the blessed derivation primitive the rule points at
    splitmix64(master ^ splitmix64(0x7472_6961_6C00_0000 ^ trial))
}

/// One counter-style draw: a pure 64-bit hash of a seed, a domain tag and
/// up to three query coordinates, built from chained [`splitmix64`]
/// finalisers. This is the primitive behind every stateless derivation in
/// the workspace — the scenario engine's adversary draws and the
/// simulator's counter-mode streams alike.
///
/// # Examples
///
/// ```
/// use mis_beeping::rng::mix;
/// // Pure: same coordinates, same answer, in any order on any thread.
/// assert_eq!(mix(1, 2, 3, 4, 5), mix(1, 2, 3, 4, 5));
/// assert_ne!(mix(1, 2, 3, 4, 5), mix(1, 2, 3, 5, 4));
/// ```
#[must_use]
pub fn mix(seed: u64, domain: u64, a: u64, b: u64, c: u64) -> u64 {
    // detlint: allow(D02) -- this IS the blessed derivation primitive the rule points at
    let mut h = splitmix64(seed ^ domain);
    h = splitmix64(h ^ a);
    h = splitmix64(h ^ b);
    splitmix64(h ^ c)
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` (the standard
/// 53-bit mantissa construction).
#[must_use]
pub fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Derives the seed of the shared fault-injection stream from the run's
/// master seed ([`DOM_FAULT_STREAM`]-separated, replacing the historic
/// ad-hoc `master ^ 0xFA17…` tag).
#[must_use]
pub fn fault_stream_seed(master: u64) -> u64 {
    mix(master, DOM_FAULT_STREAM, 0, 0, 0)
}

/// Counter-mode seed of `node`'s process stream for one `round`: every
/// round reseeds from scratch, so the draws a node makes in round `r` are
/// a pure function of `(master, node, r)`.
#[must_use]
pub fn round_seed(master: u64, node: u32, round: u32) -> u64 {
    mix(master, DOM_NODE_ROUND, u64::from(node), u64::from(round), 0)
}

/// Counter-mode per-delivery loss draw: whether the beep sent by `from`
/// to `to` in slot `slot` (`round * 2 + exchange`) is dropped at loss
/// probability `loss`. Pure, so deliveries can be evaluated in any order
/// — including skipped entirely once a listener already heard a beep.
#[must_use]
pub fn loss_dropped(master: u64, from: u32, to: u32, slot: u64, loss: f64) -> bool {
    unit(mix(
        master,
        DOM_FAULT_LOSS,
        u64::from(from),
        u64::from(to),
        slot,
    )) < loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(42), splitmix64(42));
        // Consecutive inputs map far apart (any fixed bit differs w.h.p.).
        let outs: Vec<u64> = (0..64).map(splitmix64).collect();
        let mut sorted = outs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "collision in splitmix64 outputs");
    }

    #[test]
    fn node_seeds_distinct_across_nodes_and_masters() {
        // detlint: allow(D01) -- membership-only collision probe, never iterated
        let mut seen = std::collections::HashSet::new();
        for master in 0..4u64 {
            for node in 0..64u32 {
                assert!(seen.insert(node_seed(master, node)));
            }
        }
    }

    #[test]
    fn node_rng_streams_differ() {
        let mut a = node_rng(9, 0);
        let mut b = node_rng(9, 1);
        let xs: Vec<u64> = (0..4).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn node_rng_reproducible() {
        let mut a = node_rng(5, 3);
        let mut b = node_rng(5, 3);
        for _ in 0..8 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn trial_seeds_distinct() {
        // detlint: allow(D01) -- membership-only collision probe, never iterated
        let mut seen = std::collections::HashSet::new();
        for t in 0..256 {
            assert!(seen.insert(trial_seed(1, t)));
        }
    }

    // ---- Stream pins: replay artifacts (the committed fuzz corpus, the
    // determinism suite) depend on these exact values. If one of these
    // tests fails, the change breaks byte-identical replay — do not
    // update the constant without migrating the artifacts.

    #[test]
    fn pinned_splitmix_reference_vector() {
        // The published SplitMix64 test vector.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn pinned_mix_values() {
        assert_eq!(mix(1, 2, 3, 4, 5), 0x415C_A65F_B706_4546);
        // The scenario engine's loss draw is mix under its own domain tag;
        // pinning one such draw freezes every adversary stream.
        assert_eq!(
            mix(31, 0x45D6_1EAF_0000_0002, 5, 9, 4),
            0x01F1_DEE9_1830_07CF
        );
        assert!(
            (unit(mix(31, 0x45D6_1EAF_0000_0002, 5, 9, 4)) - 0.007_596_904_666_741_011).abs()
                < 1e-18
        );
    }

    #[test]
    fn pinned_fault_stream_seed() {
        assert_eq!(fault_stream_seed(0xBEEF), 0x5E35_F307_4096_D671);
        assert_ne!(fault_stream_seed(0), fault_stream_seed(1));
    }

    #[test]
    fn pinned_round_seed() {
        assert_eq!(round_seed(7, 3, 11), 0xD305_1A64_259B_79E3);
        // Distinct across nodes, rounds and masters.
        // detlint: allow(D01) -- membership-only collision probe, never iterated
        let mut seen = std::collections::HashSet::new();
        for master in 0..2u64 {
            for node in 0..8u32 {
                for round in 0..8u32 {
                    assert!(seen.insert(round_seed(master, node, round)));
                }
            }
        }
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        assert_eq!(unit(0), 0.0);
        assert!(unit(u64::MAX) < 1.0);
        for x in 0..64u64 {
            let u = unit(splitmix64(x));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn loss_draw_boundaries() {
        // loss = 0 never drops, loss = 1 always drops, and the draw is a
        // pure function of its coordinates.
        for slot in 0..16u64 {
            assert!(!loss_dropped(9, 1, 2, slot, 0.0));
            assert!(loss_dropped(9, 1, 2, slot, 1.0));
            assert_eq!(
                loss_dropped(9, 1, 2, slot, 0.5),
                loss_dropped(9, 1, 2, slot, 0.5)
            );
        }
        // Directional: the (from, to) draw differs from (to, from).
        let fwd: Vec<bool> = (0..64).map(|s| loss_dropped(9, 1, 2, s, 0.5)).collect();
        let rev: Vec<bool> = (0..64).map(|s| loss_dropped(9, 2, 1, s, 0.5)).collect();
        assert_ne!(fwd, rev);
    }
}
