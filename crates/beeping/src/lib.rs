//! Synchronous beeping-model network simulator.
//!
//! This crate implements the execution model of *“Feedback from nature”*
//! (Scott, Jeavons & Xu, PODC 2013) and of the Afek et al. algorithms it
//! builds on: a fully synchronous network where, in each time step, every
//! node may emit a one-bit **beep** heard by all of its neighbours. A node
//! learns only the *OR* of its neighbours' signals — no counts, no sender
//! identities, no payloads.
//!
//! Following Table 1 of the paper, each time step consists of **two
//! exchanges**:
//!
//! 1. *first exchange* — candidate beeps (“I wish to join the MIS”);
//! 2. *second exchange* — join announcements (“I have joined”), emitted by
//!    candidates that heard silence.
//!
//! The per-node automaton is supplied via the [`BeepingProcess`] trait and
//! constructed per node by a [`ProcessFactory`]; the [`Simulator`] drives
//! rounds until every node is inactive, collecting [`Metrics`] (rounds,
//! beeps per node, channel bits) and optionally a [`Trace`].
//!
//! Fault injection ([`FaultPlan`]) provides the robustness extensions the
//! paper's §6 discusses: per-delivery message loss and late node wake-ups,
//! with an optional “MIS members keep announcing” repair.
//!
//! Two execution-engine features serve statistical workloads at scale: the
//! default [`PropagationKernel::Bitset`] computes beep propagation on
//! packed `u64` words (the scalar reference stays selectable via
//! [`SimConfig::with_kernel`]), and the [`batch`] module fans many
//! independent runs across worker threads with bit-identical, seed-ordered
//! results.
//!
//! # Examples
//!
//! A minimal constant-probability process (the `p = ½` special case of the
//! paper's feedback algorithm) selecting an MIS on a small cycle:
//!
//! ```
//! use mis_beeping::{
//!     BeepingProcess, FnFactory, NetworkInfo, SimConfig, Simulator, Verdict,
//! };
//! use rand::{rngs::SmallRng, Rng};
//!
//! struct Coin {
//!     beeped: bool,
//!     heard: bool,
//! }
//!
//! impl BeepingProcess for Coin {
//!     fn exchange1(&mut self, rng: &mut SmallRng) -> bool {
//!         self.beeped = rng.random_bool(0.5);
//!         self.beeped
//!     }
//!     fn exchange2(&mut self, heard: bool) -> bool {
//!         self.heard = heard;
//!         self.beeped && !heard
//!     }
//!     fn end_round(&mut self, heard_join: bool) -> Verdict {
//!         if self.beeped && !self.heard {
//!             Verdict::JoinMis
//!         } else if heard_join {
//!             Verdict::Covered
//!         } else {
//!             Verdict::Continue
//!         }
//!     }
//!     fn beep_probability(&self) -> f64 {
//!         0.5
//!     }
//! }
//!
//! let graph = mis_graph::generators::cycle(8);
//! let factory = FnFactory(|_, _, _: &NetworkInfo| Coin {
//!     beeped: false,
//!     heard: false,
//! });
//! let outcome = Simulator::new(&graph, &factory, 42, SimConfig::default()).run();
//! assert!(outcome.terminated());
//! assert!(!outcome.mis().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod config;
pub mod json;
mod metrics;
mod model;
mod process;
pub mod rng;
pub mod scenario;
mod simulator;
mod trace;

pub use batch::{parallel_indexed_map, run_batch, run_batch_map, BatchPlan};
pub use config::{FaultPlan, FaultPlanError, PropagationKernel, RngMode, SimConfig};
pub use metrics::Metrics;
pub use model::{NetworkInfo, NodeStatus, Verdict};
pub use process::{BeepingProcess, FnFactory, ProcessFactory};
pub use scenario::{Delivery, Scenario, ScenarioSpec};
pub use simulator::{RoundView, RunOutcome, Simulator, Stepper};
pub use trace::{RoundRecord, Trace, TraceLevel};
