//! The synchronous two-exchange round engine.
//!
//! The engine is generic over [`GraphView`], so it runs identically on a
//! materialised CSR [`Graph`] and on the lazy derived-graph adapters
//! (`LineGraphView`, `ProductView`, `InducedView`) — adjacency is only ever
//! consumed through ascending-order neighbour iteration, which every view
//! provides.

use core::ops::ControlFlow;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mis_graph::{Graph, GraphView, NodeId};

use crate::rng::{fault_stream_seed, loss_dropped, node_rng, round_seed};
use crate::scenario::{Delivery, Scenario};
use crate::{
    BeepingProcess, Metrics, NetworkInfo, NodeStatus, ProcessFactory, PropagationKernel, RngMode,
    RoundRecord, SimConfig, Trace, TraceLevel, Verdict,
};

/// Bits per packed word in the bitset propagation kernel.
const WORD_BITS: usize = 64;

/// Beep density (beepers ≥ n / `PULL_CROSSOVER`) above which the bitset
/// kernel pulls (per-listener early-exit scan) instead of pushing from each
/// beeper. Both directions give identical results; this only tunes speed.
const PULL_CROSSOVER: usize = 8;

/// Read-only view of one completed round, passed to observers registered
/// via [`Simulator::run_with_observer`].
///
/// Observers power the paper-analysis instrumentation (`µ_t` measures,
/// event classification) without slowing down ordinary runs.
#[derive(Debug)]
pub struct RoundView<'a> {
    /// Round index (0-based).
    pub round: u32,
    /// Which nodes emitted a candidate beep in exchange 1 this round.
    pub beeped: &'a [bool],
    /// Which nodes heard a candidate beep in exchange 1 this round.
    pub heard: &'a [bool],
    /// Node statuses *after* the round's decisions.
    pub status: &'a [NodeStatus],
    /// Beep probabilities of all nodes *at the start* of the round
    /// (0 for inactive or sleeping nodes).
    pub probabilities: &'a [f64],
}

/// Result of a completed (or capped) simulation run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    statuses: Vec<NodeStatus>,
    rounds: u32,
    terminated: bool,
    metrics: Metrics,
    trace: Trace,
    kernel_used: PropagationKernel,
}

impl PartialEq for RunOutcome {
    fn eq(&self, other: &Self) -> bool {
        // `kernel_used` is diagnostic, not part of the semantic outcome:
        // the kernel-equivalence contract is precisely that runs compare
        // equal *across* kernels.
        self.statuses == other.statuses
            && self.rounds == other.rounds
            && self.terminated == other.terminated
            && self.metrics == other.metrics
            && self.trace == other.trace
    }
}

impl RunOutcome {
    /// The selected independent set, sorted ascending.
    ///
    /// When the run `terminated` and the processes implement an MIS
    /// algorithm correctly under a fault-free network, this is a maximal
    /// independent set (verify with `mis-core`'s checker).
    #[must_use]
    pub fn mis(&self) -> Vec<NodeId> {
        self.statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == NodeStatus::InMis)
            .map(|(v, _)| v as NodeId)
            .collect()
    }

    /// Final status of every node.
    #[must_use]
    pub fn statuses(&self) -> &[NodeStatus] {
        &self.statuses
    }

    /// Number of rounds executed.
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Whether every node became inactive before the round cap.
    #[must_use]
    pub fn terminated(&self) -> bool {
        self.terminated
    }

    /// Collected metrics.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Recorded trace (empty unless tracing was enabled).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The propagation kernel that actually executed the run.
    ///
    /// A run configured with [`PropagationKernel::Bitset`] may still be
    /// served by the scalar reference kernel when the configuration
    /// requires it — a delivery-perturbing/churning scenario, or message
    /// loss under the legacy [`RngMode::Stream`] — and this field makes
    /// that substitution explicit rather than silent. Excluded from
    /// `PartialEq`: outcomes are kernel-independent by contract.
    #[must_use]
    pub fn kernel_used(&self) -> PropagationKernel {
        self.kernel_used
    }
}

/// Drives [`BeepingProcess`] automatons over a graph in synchronous
/// two-exchange rounds.
///
/// Construct with [`Simulator::new`], then either call [`run`](Self::run)
/// (or [`run_with_observer`](Self::run_with_observer)) to completion, or
/// convert [`into_stepper`](Self::into_stepper) for round-by-round control.
pub struct Simulator<'g, F: ProcessFactory, G: GraphView + ?Sized = Graph> {
    stepper: Stepper<'g, F, G>,
}

impl<'g, F: ProcessFactory, G: GraphView + ?Sized> Simulator<'g, F, G> {
    /// Creates a simulator over `graph` (a CSR [`Graph`] or any lazy
    /// [`GraphView`]) with per-node processes built by `factory`, deriving
    /// all randomness from `master_seed`.
    pub fn new(graph: &'g G, factory: &F, master_seed: u64, config: SimConfig) -> Self {
        Self {
            stepper: Stepper::new(graph, factory, master_seed, config),
        }
    }

    /// Runs to termination or the round cap.
    #[must_use]
    pub fn run(self) -> RunOutcome {
        self.run_with_observer(|_| {})
    }

    /// Runs to termination or the round cap, invoking `observer` after
    /// every round with a [`RoundView`].
    #[must_use]
    pub fn run_with_observer(mut self, mut observer: impl FnMut(&RoundView<'_>)) -> RunOutcome {
        while !self.stepper.is_done() {
            self.stepper.step();
            observer(&self.stepper.last_round_view());
        }
        self.stepper.finish()
    }

    /// Converts into a [`Stepper`] for incremental, inspectable execution.
    #[must_use]
    pub fn into_stepper(self) -> Stepper<'g, F, G> {
        self.stepper
    }
}

/// Incremental round-by-round execution of a beeping simulation, with full
/// visibility into node states between rounds.
///
/// Use this for visualisation, debugging, or analyses that need to stop
/// mid-run; [`Simulator::run`] is the one-shot wrapper.
///
/// # Examples
///
/// ```
/// use mis_beeping::{SimConfig, Simulator, NodeStatus};
/// # use mis_beeping::{BeepingProcess, FnFactory, NetworkInfo, Verdict};
/// # use rand::{rngs::SmallRng, Rng};
/// # struct Coin { beeped: bool, heard: bool }
/// # impl BeepingProcess for Coin {
/// #     fn exchange1(&mut self, rng: &mut SmallRng) -> bool {
/// #         self.beeped = rng.random_bool(0.5); self.beeped
/// #     }
/// #     fn exchange2(&mut self, heard: bool) -> bool {
/// #         self.heard = heard; self.beeped && !heard
/// #     }
/// #     fn end_round(&mut self, heard_join: bool) -> Verdict {
/// #         if self.beeped && !self.heard { Verdict::JoinMis }
/// #         else if heard_join { Verdict::Covered } else { Verdict::Continue }
/// #     }
/// #     fn beep_probability(&self) -> f64 { 0.5 }
/// # }
///
/// let graph = mis_graph::generators::cycle(6);
/// let factory = FnFactory(|_, _, _: &NetworkInfo| Coin { beeped: false, heard: false });
/// let mut stepper = Simulator::new(&graph, &factory, 3, SimConfig::default()).into_stepper();
/// while !stepper.is_done() {
///     stepper.step();
///     let active = stepper
///         .statuses()
///         .iter()
///         .filter(|s| **s == NodeStatus::Active)
///         .count();
///     println!("round {}: {active} active", stepper.round());
/// }
/// let outcome = stepper.finish();
/// assert!(outcome.terminated());
/// ```
pub struct Stepper<'g, F: ProcessFactory, G: GraphView + ?Sized = Graph> {
    graph: &'g G,
    config: SimConfig,
    master_seed: u64,
    // Which kernel actually runs (resolved once from the configuration;
    // see `RunOutcome::kernel_used`), and the effective intra-run shard
    // count for the bitset pull direction (1 = sequential).
    kernel_used: PropagationKernel,
    shards: usize,
    processes: Vec<F::Process>,
    status: Vec<NodeStatus>,
    // Per-node streams (stream mode only; empty under counter draws).
    rngs: Vec<SmallRng>,
    fault_rng: SmallRng,
    metrics: Metrics,
    trace: Trace,
    beep1: Vec<bool>,
    beep2: Vec<bool>,
    heard1: Vec<bool>,
    heard2: Vec<bool>,
    probs: Vec<f64>,
    // Scratch buffers for the bitset kernel, one bit per node.
    beep_words: Vec<u64>,
    heard_words: Vec<u64>,
    // Merged wake schedule: the later of the fault plan's and the
    // scenario's wake round, per node.
    wake: Vec<u32>,
    sleepy: bool,
    // Churn scratch: which nodes are absent this round.
    away: Vec<bool>,
    // Scenario-delayed deliveries per exchange: (arrival round, receiver).
    pending1: Vec<(u32, NodeId)>,
    pending2: Vec<(u32, NodeId)>,
    remaining: usize,
    round: u32,
}

impl<'g, F: ProcessFactory, G: GraphView + ?Sized> Stepper<'g, F, G> {
    fn new(graph: &'g G, factory: &F, master_seed: u64, config: SimConfig) -> Self {
        let n = graph.node_count();
        let info = NetworkInfo {
            node_count: n,
            max_degree: graph.max_degree(),
        };
        let processes: Vec<F::Process> = (0..n as NodeId)
            .map(|v| factory.create(v, graph.degree(v), &info))
            .collect();
        let scenario_wake: Option<Vec<u32>> = config.scenario.as_ref().map(|s| {
            let degrees: Vec<usize> = (0..n as NodeId).map(|v| graph.degree(v)).collect();
            s.wake_schedule(&degrees)
        });
        let wake: Vec<u32> = (0..n as NodeId)
            .map(|v| {
                let from_scenario = scenario_wake
                    .as_ref()
                    .and_then(|w| w.get(v as usize).copied())
                    .unwrap_or(0);
                config.faults.wake_round(v).max(from_scenario)
            })
            .collect();
        let sleepy = wake.iter().any(|&w| w > 0);
        let status: Vec<NodeStatus> = wake
            .iter()
            .map(|&w| {
                if w > 0 {
                    NodeStatus::Asleep
                } else {
                    NodeStatus::Active
                }
            })
            .collect();
        let rngs: Vec<SmallRng> = if config.rng == RngMode::Counter {
            // Counter mode reseeds per (node, round); no standing streams.
            Vec::new()
        } else {
            (0..n as NodeId).map(|v| node_rng(master_seed, v)).collect()
        };
        let fault_rng = SmallRng::seed_from_u64(fault_stream_seed(master_seed));
        // Resolve which kernel actually runs. The scenario reference path
        // (delivery perturbation or churn) is scalar by definition, and
        // stream-mode loss draws must consume the fault RNG in the scalar
        // reference order; counter-mode loss draws are order-free, so a
        // lossy bitset request is honoured.
        let lossy = config.faults.message_loss > 0.0;
        let scenario_path = config
            .scenario
            .as_deref()
            .is_some_and(|s| Scenario::has_churn(s) || Scenario::perturbs_deliveries(s));
        let kernel_used = if scenario_path || (lossy && config.rng == RngMode::Stream) {
            PropagationKernel::Scalar
        } else {
            config.kernel
        };
        // Sharding splits the bitset pull direction only; the scalar and
        // scenario reference paths stay sequential regardless.
        let shards = if config.rng == RngMode::Counter && kernel_used == PropagationKernel::Bitset {
            match config.shards {
                0 => crate::batch::auto_jobs(),
                s => s,
            }
        } else {
            1
        };
        let remaining = status.iter().filter(|s| !s.is_inactive()).count();
        Self {
            graph,
            config,
            master_seed,
            kernel_used,
            shards,
            processes,
            status,
            rngs,
            fault_rng,
            metrics: Metrics::new(n),
            trace: Trace::default(),
            beep1: vec![false; n],
            beep2: vec![false; n],
            heard1: vec![false; n],
            heard2: vec![false; n],
            probs: vec![0.0; n],
            beep_words: vec![0; n.div_ceil(WORD_BITS)],
            heard_words: vec![0; n.div_ceil(WORD_BITS)],
            wake,
            sleepy,
            away: vec![false; n],
            pending1: Vec::new(),
            pending2: Vec::new(),
            remaining,
            round: 0,
        }
    }

    /// Whether the run is over (all nodes inactive, or round cap hit).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.remaining == 0 || self.round >= self.config.max_rounds
    }

    /// Propagates one exchange's beeps (`exchange1` picks the
    /// `beep1`/`heard1` buffer pair, otherwise `beep2`/`heard2`) through
    /// the kernel the flags select. `scenario` is `Some` only on the
    /// scenario reference path (delivery perturbation or churn).
    fn broadcast_exchange(
        &mut self,
        exchange1: bool,
        bitset: bool,
        sleepy: bool,
        lossy: bool,
        scenario: Option<&dyn Scenario>,
        churn: bool,
    ) {
        let loss = self.config.faults.message_loss;
        let slot = u64::from(self.round) * 2 + u64::from(!exchange1);
        let mut drop = if !lossy {
            LossDraw::None
        } else if self.config.rng == RngMode::Counter {
            LossDraw::Counter(CounterLoss {
                master: self.master_seed,
                slot,
                loss,
            })
        } else {
            LossDraw::Stream {
                rng: &mut self.fault_rng,
                loss,
            }
        };
        let (beeps, heard, pending) = if exchange1 {
            (&self.beep1, &mut self.heard1, &mut self.pending1)
        } else {
            (&self.beep2, &mut self.heard2, &mut self.pending2)
        };
        if let Some(scenario) = scenario {
            broadcast_scenario(
                self.graph,
                &self.status,
                &self.away,
                churn,
                &mut drop,
                scenario,
                self.round,
                u32::from(!exchange1),
                beeps,
                heard,
                pending,
            );
        } else if bitset {
            let counter_loss = match drop {
                LossDraw::Counter(cl) => Some(cl),
                _ => None,
            };
            broadcast_bitset(
                self.graph,
                &self.status,
                sleepy,
                beeps,
                heard,
                &mut self.beep_words,
                &mut self.heard_words,
                counter_loss,
                self.shards,
            );
        } else {
            broadcast(self.graph, &self.status, &mut drop, beeps, heard);
        }
    }

    /// Executes one full round (both exchanges plus decisions). Does
    /// nothing once [`is_done`](Self::is_done).
    pub fn step(&mut self) {
        if self.is_done() {
            return;
        }
        let n = self.graph.node_count();
        let round = self.round;
        let lossy = self.config.faults.message_loss > 0.0;
        // Scenario capability flags: a wake-only scenario costs nothing
        // here and keeps the fast kernels; delivery perturbation or churn
        // switches to the scalar scenario reference path.
        let scenario = self.config.scenario.clone();
        let churn = scenario.as_deref().is_some_and(Scenario::has_churn);
        let scenario_path = churn
            || scenario
                .as_deref()
                .is_some_and(Scenario::perturbs_deliveries);
        let scenario_ref = if scenario_path {
            scenario.as_deref()
        } else {
            None
        };
        // Which kernel runs was resolved at construction (scenario paths
        // are scalar; stream-mode lossy runs are scalar; counter-mode
        // lossy bitset is legal because the loss draws are pure).
        debug_assert!(!scenario_path || self.kernel_used == PropagationKernel::Scalar);
        let bitset = self.kernel_used == PropagationKernel::Bitset;
        let counter = self.config.rng == RngMode::Counter;
        let sleepy = self.sleepy;

        // Wake sleeping nodes whose time has come.
        for v in 0..n {
            if self.status[v] == NodeStatus::Asleep && self.wake[v] <= round {
                self.status[v] = NodeStatus::Active;
            }
        }

        // Churn: mark who is absent this round. An absent node is frozen —
        // it neither beeps nor hears, draws no randomness, and makes no
        // decisions until its window ends.
        if churn {
            let s = scenario.as_deref().expect("churn implies a scenario");
            for v in 0..n {
                self.away[v] = s.absent(v as NodeId, round);
            }
        }

        // Snapshot probabilities (observer/stepper visibility).
        for v in 0..n {
            self.probs[v] = if self.status[v] == NodeStatus::Active && !(churn && self.away[v]) {
                self.processes[v].beep_probability()
            } else {
                0.0
            };
        }

        // Exchange 1: candidate beeps. With the heartbeat repair, MIS
        // members also beep here, persistently inhibiting late wakers from
        // claiming next to them (like sustained Delta expression by SOP
        // cells).
        let mut candidates: u32 = 0;
        for v in 0..n {
            self.beep1[v] = if churn && self.away[v] {
                false
            } else {
                match self.status[v] {
                    NodeStatus::Active => {
                        // Counter mode: a fresh per-(node, round) stream,
                        // so the round's draws are pure in (master, v,
                        // round). Stream mode: the node's standing stream.
                        let b = if counter {
                            let mut tmp = SmallRng::seed_from_u64(round_seed(
                                self.master_seed,
                                v as NodeId,
                                round,
                            ));
                            self.processes[v].exchange1(&mut tmp)
                        } else {
                            self.processes[v].exchange1(&mut self.rngs[v])
                        };
                        candidates += u32::from(b);
                        b
                    }
                    NodeStatus::InMis if self.config.mis_keeps_beeping => {
                        self.metrics.heartbeat_signals += 1;
                        true
                    }
                    _ => false,
                }
            };
        }
        self.broadcast_exchange(true, bitset, sleepy, lossy, scenario_ref, churn);

        // Exchange 2: join announcements (plus optional MIS heartbeats).
        for v in 0..n {
            self.beep2[v] = if churn && self.away[v] {
                false
            } else {
                match self.status[v] {
                    NodeStatus::Active => self.processes[v].exchange2(self.heard1[v]),
                    NodeStatus::InMis if self.config.mis_keeps_beeping => {
                        self.metrics.heartbeat_signals += 1;
                        true
                    }
                    _ => false,
                }
            };
        }
        self.broadcast_exchange(false, bitset, sleepy, lossy, scenario_ref, churn);

        // Decisions and metric accounting.
        let mut joined: Vec<NodeId> = Vec::new();
        let mut covered: u32 = 0;
        for v in 0..n {
            if self.status[v] != NodeStatus::Active || (churn && self.away[v]) {
                continue;
            }
            self.metrics.signals[v] += u32::from(self.beep1[v]) + u32::from(self.beep2[v]);
            self.metrics.beeps[v] += u32::from(self.beep1[v] || self.beep2[v]);
            match self.processes[v].end_round(self.heard2[v]) {
                Verdict::Continue => {}
                Verdict::JoinMis => {
                    self.status[v] = NodeStatus::InMis;
                    joined.push(v as NodeId);
                    self.remaining -= 1;
                }
                Verdict::Covered => {
                    self.status[v] = NodeStatus::Covered;
                    covered += 1;
                    self.remaining -= 1;
                }
            }
        }

        if self.config.record_active_series {
            self.metrics.active_series.push(self.active_count());
        }
        if self.config.trace == TraceLevel::Rounds {
            self.trace.push(RoundRecord {
                round,
                candidates,
                joined,
                covered,
                active_after: self.active_count() as u32,
            });
        }
        self.round += 1;
        self.metrics.rounds = self.round;
    }

    /// The view of the most recently executed round.
    ///
    /// # Panics
    ///
    /// Panics if no round has been executed yet.
    #[must_use]
    pub fn last_round_view(&self) -> RoundView<'_> {
        assert!(self.round > 0, "no round has been executed yet");
        RoundView {
            round: self.round - 1,
            beeped: &self.beep1,
            heard: &self.heard1,
            status: &self.status,
            probabilities: &self.probs,
        }
    }

    /// Number of completed rounds.
    #[must_use]
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Current status of every node.
    #[must_use]
    pub fn statuses(&self) -> &[NodeStatus] {
        &self.status
    }

    /// Beep probabilities captured at the start of the last executed round
    /// (all zeros before the first step).
    #[must_use]
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// Number of currently active nodes.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.status
            .iter()
            .filter(|s| **s == NodeStatus::Active)
            .count()
    }

    /// Metrics accumulated so far.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Finalises the run into a [`RunOutcome`] (callable at any point; an
    /// unfinished run reports `terminated() == false` only if nodes remain
    /// active *and* the cap was reached — stopping early by choice keeps
    /// `terminated()` equal to “no node remains active”).
    #[must_use]
    pub fn finish(self) -> RunOutcome {
        RunOutcome {
            terminated: self.remaining == 0,
            statuses: self.status,
            rounds: self.round,
            metrics: self.metrics,
            trace: self.trace,
            kernel_used: self.kernel_used,
        }
    }

    /// The propagation kernel this run actually executes (see
    /// [`RunOutcome::kernel_used`]).
    #[must_use]
    pub fn kernel_used(&self) -> PropagationKernel {
        self.kernel_used
    }
}

/// Per-delivery drop decision for one exchange, shared by the scalar and
/// scenario broadcast paths.
enum LossDraw<'a> {
    /// Reliable network: nothing is dropped.
    None,
    /// Stream mode: consume the shared fault stream in the scalar
    /// reference order (one draw per non-asleep delivery).
    Stream { rng: &'a mut SmallRng, loss: f64 },
    /// Counter mode: a pure draw keyed by `(sender, receiver, slot)`.
    Counter(CounterLoss),
}

impl LossDraw<'_> {
    #[inline]
    fn dropped(&mut self, from: NodeId, to: NodeId) -> bool {
        match self {
            LossDraw::None => false,
            LossDraw::Stream { rng, loss } => rng.random_bool(*loss),
            LossDraw::Counter(cl) => loss_dropped(cl.master, from, to, cl.slot, cl.loss),
        }
    }
}

/// Coordinates of counter-mode loss draws for one exchange: every
/// delivery's fate is `loss_dropped(master, from, to, slot, loss)`.
#[derive(Clone, Copy)]
struct CounterLoss {
    master: u64,
    slot: u64,
    loss: f64,
}

/// Computes `heard[v] = OR of beeps delivered to v from its neighbours`,
/// applying the per-delivery loss decision of `drop`.
fn broadcast<G: GraphView + ?Sized>(
    graph: &G,
    status: &[NodeStatus],
    drop: &mut LossDraw<'_>,
    beeps: &[bool],
    heard: &mut [bool],
) {
    heard.fill(false);
    for (v, &b) in beeps.iter().enumerate() {
        if !b {
            continue;
        }
        // Ascending neighbour order is part of the GraphView contract, so
        // a stream-mode loss draw consumes the fault RNG in exactly the
        // CSR reference order (counter-mode draws are order-free anyway).
        graph.for_each_neighbor(v as NodeId, |u| {
            // Sleeping nodes hear nothing.
            if status[u as usize] == NodeStatus::Asleep {
                return;
            }
            if drop.dropped(v as NodeId, u) {
                return;
            }
            heard[u as usize] = true;
        });
    }
}

/// The scenario reference path: like [`broadcast`], but each delivery's
/// fate is additionally decided by the [`Scenario`] — dropped, delayed, or
/// on time — and absent (churned-out) nodes neither send nor hear.
///
/// Delayed deliveries are parked in `pending` as `(arrival round,
/// receiver)` and drained at the top of the same exchange slot of their
/// arrival round; a delayed beep whose receiver is asleep or absent on
/// arrival is lost. Legacy `FaultPlan` loss draws are decided first (in
/// reference order for a stream-mode `drop`), so a scenario composes with
/// `message_loss` exactly as the scalar kernel defines it.
#[allow(clippy::too_many_arguments)]
fn broadcast_scenario<G: GraphView + ?Sized>(
    graph: &G,
    status: &[NodeStatus],
    away: &[bool],
    churn: bool,
    drop: &mut LossDraw<'_>,
    scenario: &dyn Scenario,
    round: u32,
    exchange: u32,
    beeps: &[bool],
    heard: &mut [bool],
    pending: &mut Vec<(u32, NodeId)>,
) {
    heard.fill(false);
    for (v, &b) in beeps.iter().enumerate() {
        if !b {
            continue;
        }
        graph.for_each_neighbor(v as NodeId, |u| {
            let ui = u as usize;
            // Sleeping and absent nodes hear nothing.
            if status[ui] == NodeStatus::Asleep || (churn && away[ui]) {
                return;
            }
            if drop.dropped(v as NodeId, u) {
                return;
            }
            match scenario.delivery(v as NodeId, u, round, exchange) {
                Delivery::OnTime => heard[ui] = true,
                Delivery::Dropped => {}
                Delivery::Delayed(d) => pending.push((round + d.max(1), u)),
            }
        });
    }
    // Deliver the delayed beeps whose round has come (entries pushed above
    // always have a strictly later arrival round, so they survive).
    pending.retain(|&(due, u)| {
        if due > round {
            return true;
        }
        let ui = u as usize;
        if status[ui] != NodeStatus::Asleep && !(churn && away[ui]) {
            heard[ui] = true;
        }
        false
    });
}

/// Packs a `bool`-per-node buffer into one bit per node, little-endian
/// within each `u64` word.
fn pack_bits(bits: &[bool], words: &mut [u64]) {
    for (word, chunk) in words.iter_mut().zip(bits.chunks(WORD_BITS)) {
        let mut w = 0u64;
        for (i, &b) in chunk.iter().enumerate() {
            w |= u64::from(b) << i;
        }
        *word = w;
    }
}

/// Unpacks one bit per node back into a `bool`-per-node buffer.
fn unpack_bits(words: &[u64], bits: &mut [bool]) {
    for (chunk, &word) in bits.chunks_mut(WORD_BITS).zip(words) {
        for (i, b) in chunk.iter_mut().enumerate() {
            *b = (word >> i) & 1 != 0;
        }
    }
}

/// Whether listener `v` hears any beeping neighbour, via the word-grouped
/// early-exit scan: ascending iteration keeps same-word neighbours
/// contiguous, so they fold into one mask tested against the beep bitset.
fn listener_hears<G: GraphView + ?Sized>(graph: &G, v: NodeId, beep_words: &[u64]) -> bool {
    let mut cur_word = usize::MAX;
    let mut mask = 0u64;
    let mut hit = false;
    let flow = graph.try_for_each_neighbor(v, |u| {
        let w = u as usize / WORD_BITS;
        if w != cur_word {
            if cur_word != usize::MAX && beep_words[cur_word] & mask != 0 {
                hit = true;
                return ControlFlow::Break(());
            }
            cur_word = w;
            mask = 0;
        }
        mask |= 1u64 << (u as usize % WORD_BITS);
        ControlFlow::Continue(())
    });
    if flow == ControlFlow::Continue(())
        && cur_word != usize::MAX
        && beep_words[cur_word] & mask != 0
    {
        hit = true;
    }
    hit
}

/// Whether listener `v` hears any beeping neighbour when each delivery is
/// dropped by a counter-keyed loss draw. The draws are pure functions of
/// `(sender, v, slot)`, so the early exit on the first surviving delivery
/// skips the remaining draws without affecting any other node's outcome.
fn listener_hears_lossy<G: GraphView + ?Sized>(
    graph: &G,
    v: NodeId,
    beep_words: &[u64],
    cl: CounterLoss,
) -> bool {
    graph.try_for_each_neighbor(v, |u| {
        let beeped = beep_words[u as usize / WORD_BITS] >> (u as usize % WORD_BITS) & 1 != 0;
        if beeped && !loss_dropped(cl.master, u, v, cl.slot, cl.loss) {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }) == ControlFlow::Break(())
}

/// Computes the heard bitset for the listeners of `out.len()` consecutive
/// words starting at word `first_word`, in the pull direction. This is the
/// unit of intra-run sharding: each shard owns a word-aligned listener
/// range and writes only its own output words.
fn pull_heard_words<G: GraphView + ?Sized>(
    graph: &G,
    status: &[NodeStatus],
    sleepy: bool,
    beep_words: &[u64],
    loss: Option<CounterLoss>,
    first_word: usize,
    out: &mut [u64],
) {
    let n = graph.node_count();
    for (i, word_out) in out.iter_mut().enumerate() {
        let base = (first_word + i) * WORD_BITS;
        let mut word = 0u64;
        for (off, s) in status[base..(base + WORD_BITS).min(n)].iter().enumerate() {
            if sleepy && *s == NodeStatus::Asleep {
                continue;
            }
            let v = base + off;
            let hit = match loss {
                None => listener_hears(graph, v as NodeId, beep_words),
                Some(cl) => listener_hears_lossy(graph, v as NodeId, beep_words, cl),
            };
            word |= u64::from(hit) << off;
        }
        *word_out = word;
    }
}

/// The bitset propagation kernel: computes the same
/// `heard[v] = OR of beeps delivered to v from its neighbours` as
/// [`broadcast`], on packed `u64` words, optionally applying counter-keyed
/// per-delivery loss (`loss`) and splitting the work across `shards`
/// scoped worker threads.
///
/// The direction is chosen per exchange from the beep density:
///
/// * **pull** (dense beeps) — every awake node walks its sorted CSR
///   neighbour list word-at-a-time, folding the neighbours that share a
///   `u64` word into one mask, and stops at the first word that intersects
///   the beep bitset. When half the network beeps, the expected scan is a
///   couple of words regardless of degree.
/// * **push** (sparse beeps) — scan the beep words, skip zero words whole,
///   and OR each beeper's neighbour bits into the heard bitset; asleep
///   listeners are cleared afterwards in one pass.
///
/// The density heuristic picks the direction first; sharding then only
/// applies to the pull direction, whose per-listener gather writes only
/// the listener's own bit (so word-aligned listener ranges shard without
/// synchronisation). Counter loss draws are pure in `(sender, receiver,
/// slot)`, so the early exit, the evaluation order, and the direction are
/// all free: both directions produce identical results, and mixing them
/// across configurations never changes an outcome.
#[allow(clippy::too_many_arguments)]
fn broadcast_bitset<G: GraphView + ?Sized>(
    graph: &G,
    status: &[NodeStatus],
    sleepy: bool,
    beeps: &[bool],
    heard: &mut [bool],
    beep_words: &mut [u64],
    heard_words: &mut [u64],
    loss: Option<CounterLoss>,
    shards: usize,
) {
    let n = graph.node_count();
    pack_bits(beeps, beep_words);
    heard_words.fill(0);
    let beepers: usize = beep_words.iter().map(|w| w.count_ones() as usize).sum();
    let words = heard_words.len();
    let shards = shards.min(words);
    if beepers == 0 {
        // Nothing beeped; nothing can be heard.
    } else if beepers * PULL_CROSSOVER < n {
        // Push: walk set bits of the beep words, OR neighbour bits in.
        // Counter loss draws are direction-free (pure in (sender,
        // receiver, slot)), so pushing stays bit-identical to pulling —
        // sharded configurations take this branch too, because pushing a
        // sparse exchange is cheaper than any parallel pull over it.
        for (wi, &word) in beep_words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let v = wi * WORD_BITS + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                graph.for_each_neighbor(v as NodeId, |u| {
                    if let Some(cl) = loss {
                        if loss_dropped(cl.master, v as NodeId, u, cl.slot, cl.loss) {
                            return;
                        }
                    }
                    heard_words[u as usize / WORD_BITS] |= 1u64 << (u as usize % WORD_BITS);
                });
            }
        }
        if sleepy {
            // Sleeping nodes hear nothing.
            for (v, s) in status.iter().enumerate() {
                if *s == NodeStatus::Asleep {
                    heard_words[v / WORD_BITS] &= !(1u64 << (v % WORD_BITS));
                }
            }
        }
    } else if shards > 1 {
        // Sharded pull over word-aligned listener chunks: each worker
        // computes its own output words, merged back by index.
        let beep_words: &[u64] = beep_words;
        let chunk_words = words.div_ceil(shards);
        let chunks = words.div_ceil(chunk_words);
        let parts: Vec<Vec<u64>> = crate::batch::parallel_indexed_map(chunks, shards, |c| {
            let lo = c * chunk_words;
            let hi = ((c + 1) * chunk_words).min(words);
            let mut out = vec![0u64; hi - lo];
            pull_heard_words(graph, status, sleepy, beep_words, loss, lo, &mut out);
            out
        });
        for (c, part) in parts.into_iter().enumerate() {
            let lo = c * chunk_words;
            heard_words[lo..lo + part.len()].copy_from_slice(&part);
        }
    } else {
        pull_heard_words(graph, status, sleepy, beep_words, loss, 0, heard_words);
    }
    unpack_bits(heard_words, heard);
}

impl<F: ProcessFactory, G: GraphView + ?Sized> core::fmt::Debug for Simulator<'_, F, G> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Simulator")
            .field("nodes", &self.stepper.graph.node_count())
            .field("config", &self.stepper.config)
            .finish_non_exhaustive()
    }
}

impl<F: ProcessFactory, G: GraphView + ?Sized> core::fmt::Debug for Stepper<'_, F, G> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Stepper")
            .field("nodes", &self.graph.node_count())
            .field("round", &self.round)
            .field("active", &self.active_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BeepingProcess, FaultPlan, FnFactory};
    use mis_graph::generators;

    /// Beep with a fixed probability forever — a correct (if slow) MIS
    /// algorithm used to exercise the engine without `mis-core`.
    struct Coin {
        p: f64,
        beeped: bool,
        heard: bool,
    }

    impl Coin {
        fn factory(p: f64) -> FnFactory<impl Fn(NodeId, usize, &NetworkInfo) -> Coin> {
            FnFactory(move |_, _, _: &NetworkInfo| Coin {
                p,
                beeped: false,
                heard: false,
            })
        }
    }

    impl BeepingProcess for Coin {
        fn exchange1(&mut self, rng: &mut SmallRng) -> bool {
            self.beeped = self.p >= 1.0 || rng.random_bool(self.p);
            self.beeped
        }
        fn exchange2(&mut self, heard: bool) -> bool {
            self.heard = heard;
            self.beeped && !heard
        }
        fn end_round(&mut self, heard_join: bool) -> Verdict {
            // Cautious join rule: yield to any join announcement. In a
            // fault-free network a winning candidate never hears one, so
            // this matches Table 1 of the paper there, while staying safe
            // under late wake-ups (the heartbeat repair).
            if heard_join {
                Verdict::Covered
            } else if self.beeped && !self.heard {
                Verdict::JoinMis
            } else {
                Verdict::Continue
            }
        }
        fn beep_probability(&self) -> f64 {
            self.p
        }
    }

    fn assert_is_mis(g: &Graph, mis: &[NodeId]) {
        // detlint: allow(D01) -- contains-only adjacency check, never iterated
        let in_set: std::collections::HashSet<_> = mis.iter().copied().collect();
        for &v in mis {
            for &u in g.neighbors(v) {
                assert!(!in_set.contains(&u), "adjacent MIS nodes {u}, {v}");
            }
        }
        for v in g.nodes() {
            assert!(
                in_set.contains(&v) || g.neighbors(v).iter().any(|u| in_set.contains(u)),
                "node {v} uncovered"
            );
        }
    }

    #[test]
    fn coin_process_selects_mis_on_families() {
        for (name, g) in [
            ("cycle", generators::cycle(12)),
            ("complete", generators::complete(8)),
            ("path", generators::path(9)),
            ("star", generators::star(10)),
            ("grid", generators::grid2d(4, 5)),
        ] {
            let outcome = Simulator::new(&g, &Coin::factory(0.5), 11, SimConfig::default()).run();
            assert!(outcome.terminated(), "{name} did not terminate");
            assert_is_mis(&g, &outcome.mis());
        }
    }

    #[test]
    fn single_node_joins_immediately() {
        let g = Graph::empty(1);
        let outcome = Simulator::new(&g, &Coin::factory(1.0), 0, SimConfig::default()).run();
        assert!(outcome.terminated());
        assert_eq!(outcome.mis(), vec![0]);
        assert_eq!(outcome.rounds(), 1);
        assert_eq!(outcome.metrics().beeps[0], 1);
        assert_eq!(outcome.metrics().signals[0], 2); // both exchanges
    }

    #[test]
    fn always_beeping_neighbours_never_terminate() {
        let g = generators::complete(2);
        let cfg = SimConfig::default().with_max_rounds(50);
        let outcome = Simulator::new(&g, &Coin::factory(1.0), 1, cfg).run();
        assert!(!outcome.terminated());
        assert_eq!(outcome.rounds(), 50);
        assert!(outcome.mis().is_empty());
    }

    #[test]
    fn empty_graph_terminates_in_zero_rounds() {
        let g = Graph::empty(0);
        let outcome = Simulator::new(&g, &Coin::factory(0.5), 2, SimConfig::default()).run();
        assert!(outcome.terminated());
        assert_eq!(outcome.rounds(), 0);
    }

    #[test]
    fn determinism_per_seed() {
        let g = generators::gnp(30, 0.3, &mut rand::rngs::SmallRng::seed_from_u64(3));
        let a = Simulator::new(&g, &Coin::factory(0.5), 77, SimConfig::default()).run();
        let b = Simulator::new(&g, &Coin::factory(0.5), 77, SimConfig::default()).run();
        assert_eq!(a, b);
        let c = Simulator::new(&g, &Coin::factory(0.5), 78, SimConfig::default()).run();
        // Different seeds *may* coincide, but on 30 nodes it is vanishingly
        // unlikely the full outcome (statuses + metrics) matches.
        assert_ne!(a, c);
    }

    #[test]
    fn trace_and_series_record() {
        let g = generators::cycle(10);
        let cfg = SimConfig::default()
            .with_trace(TraceLevel::Rounds)
            .with_active_series(true);
        let outcome = Simulator::new(&g, &Coin::factory(0.5), 5, cfg).run();
        assert_eq!(outcome.trace().len() as u32, outcome.rounds());
        assert_eq!(
            outcome.metrics().active_series.len() as u32,
            outcome.rounds()
        );
        assert_eq!(outcome.trace().total_joins(), outcome.mis().len());
        // Active counts are non-increasing for a fault-free run.
        let series = &outcome.metrics().active_series;
        assert!(series.windows(2).all(|w| w[1] <= w[0]));
        assert_eq!(*series.last().unwrap(), 0);
    }

    #[test]
    fn observer_sees_every_round() {
        let g = generators::path(6);
        let mut seen = 0u32;
        let outcome = Simulator::new(&g, &Coin::factory(0.5), 8, SimConfig::default())
            .run_with_observer(|view| {
                assert_eq!(view.round, seen);
                assert_eq!(view.beeped.len(), 6);
                assert_eq!(view.probabilities.len(), 6);
                seen += 1;
            });
        assert_eq!(seen, outcome.rounds());
    }

    #[test]
    fn stepper_matches_run() {
        let g = generators::gnp(25, 0.4, &mut rand::rngs::SmallRng::seed_from_u64(6));
        let run = Simulator::new(&g, &Coin::factory(0.5), 21, SimConfig::default()).run();
        let mut stepper =
            Simulator::new(&g, &Coin::factory(0.5), 21, SimConfig::default()).into_stepper();
        let mut rounds = 0;
        while !stepper.is_done() {
            stepper.step();
            rounds += 1;
        }
        assert_eq!(rounds, run.rounds());
        let stepped = stepper.finish();
        assert_eq!(stepped, run);
    }

    #[test]
    fn stepper_exposes_intermediate_state() {
        let g = generators::complete(6);
        let mut stepper =
            Simulator::new(&g, &Coin::factory(0.3), 2, SimConfig::default()).into_stepper();
        assert_eq!(stepper.active_count(), 6);
        assert_eq!(stepper.round(), 0);
        stepper.step();
        assert_eq!(stepper.round(), 1);
        assert_eq!(stepper.probabilities().len(), 6);
        assert_eq!(stepper.last_round_view().round, 0);
        // Step after done is a no-op.
        while !stepper.is_done() {
            stepper.step();
        }
        let rounds = stepper.round();
        stepper.step();
        assert_eq!(stepper.round(), rounds);
    }

    #[test]
    fn stepper_finish_midway_reports_state() {
        let g = generators::cycle(20);
        let mut stepper =
            Simulator::new(&g, &Coin::factory(0.2), 3, SimConfig::default()).into_stepper();
        stepper.step();
        let partial = stepper.finish();
        assert_eq!(partial.rounds(), 1);
        // After one round at p = 0.2 on C₂₀ some nodes are usually still
        // active, but either way the flag must agree with the statuses.
        let active_left = partial.statuses().iter().any(|s| !s.is_inactive());
        assert_eq!(partial.terminated(), !active_left);
    }

    #[test]
    #[should_panic(expected = "no round")]
    fn view_before_first_step_panics() {
        let g = generators::path(3);
        let stepper =
            Simulator::new(&g, &Coin::factory(0.5), 0, SimConfig::default()).into_stepper();
        let _ = stepper.last_round_view();
    }

    #[test]
    fn sleeping_nodes_join_late_with_repair() {
        // A path 0-1: node 1 sleeps 30 rounds; node 0 joins early. With the
        // heartbeat repair, node 1 must end up covered, never in the MIS.
        let g = generators::path(2);
        let cfg = SimConfig::default()
            .with_mis_keeps_beeping(true)
            .with_faults(FaultPlan {
                message_loss: 0.0,
                wake_rounds: vec![0, 30],
            });
        let outcome = Simulator::new(&g, &Coin::factory(1.0), 4, cfg).run();
        assert!(outcome.terminated());
        assert_eq!(outcome.mis(), vec![0]);
        assert_eq!(outcome.statuses()[1], NodeStatus::Covered);
        assert!(outcome.metrics().heartbeat_signals > 0);
    }

    #[test]
    fn sleeping_nodes_can_violate_without_repair() {
        // Same scenario without the repair: node 1 wakes to silence and
        // joins, violating independence — the engine must faithfully report
        // both nodes as InMis (detection is the verifier's job).
        let g = generators::path(2);
        let cfg = SimConfig::default().with_faults(FaultPlan {
            message_loss: 0.0,
            wake_rounds: vec![0, 30],
        });
        let outcome = Simulator::new(&g, &Coin::factory(1.0), 4, cfg).run();
        assert!(outcome.terminated());
        assert_eq!(outcome.mis(), vec![0, 1]);
    }

    #[test]
    fn message_loss_still_terminates() {
        let g = generators::cycle(8);
        let cfg = SimConfig::default().with_faults(FaultPlan {
            message_loss: 0.2,
            wake_rounds: vec![],
        });
        let outcome = Simulator::new(&g, &Coin::factory(0.5), 6, cfg).run();
        assert!(outcome.terminated());
        assert!(!outcome.mis().is_empty());
    }

    #[test]
    fn beeps_count_rounds_not_signals() {
        let g = Graph::empty(1);
        let outcome = Simulator::new(&g, &Coin::factory(1.0), 0, SimConfig::default()).run();
        // One round, beeped in both exchanges: 1 beep, 2 signals.
        assert_eq!(outcome.metrics().total_beeps(), 1);
        assert_eq!(outcome.metrics().signals[0], 2);
    }

    #[test]
    fn pack_unpack_round_trip() {
        for n in [0usize, 1, 63, 64, 65, 130] {
            let bits: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let mut words = vec![0u64; n.div_ceil(WORD_BITS)];
            pack_bits(&bits, &mut words);
            let mut back = vec![false; n];
            unpack_bits(&words, &mut back);
            assert_eq!(back, bits, "n = {n}");
        }
    }

    #[test]
    fn bitset_kernel_matches_scalar_outcomes() {
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(77);
        for (name, g) in [
            ("cycle", generators::cycle(130)),
            ("complete", generators::complete(65)),
            ("gnp", generators::gnp(120, 0.1, &mut rng)),
            ("grid", generators::grid2d(9, 13)),
            ("isolated", Graph::empty(70)),
        ] {
            for seed in 0..3 {
                for p in [0.05, 0.5, 0.9] {
                    // Capped: dense Coin processes may never terminate
                    // (e.g. p = 0.9 on a clique), and equivalence must
                    // hold round for round either way.
                    let base = SimConfig::default().with_max_rounds(400);
                    let scalar = base.clone().with_kernel(PropagationKernel::Scalar);
                    let bitset = base.with_kernel(PropagationKernel::Bitset);
                    let a = Simulator::new(&g, &Coin::factory(p), seed, scalar).run();
                    let b = Simulator::new(&g, &Coin::factory(p), seed, bitset).run();
                    assert_eq!(a, b, "{name} seed {seed} p {p}");
                }
            }
        }
    }

    #[test]
    fn bitset_kernel_matches_scalar_under_wake_faults() {
        let g = generators::grid2d(8, 8);
        let wake_rounds: Vec<u32> = (0..64).map(|v| (v % 7) * 3).collect();
        for heartbeat in [false, true] {
            let base = SimConfig::default()
                .with_mis_keeps_beeping(heartbeat)
                .with_faults(FaultPlan {
                    message_loss: 0.0,
                    wake_rounds: wake_rounds.clone(),
                });
            let a = Simulator::new(
                &g,
                &Coin::factory(0.5),
                9,
                base.clone().with_kernel(PropagationKernel::Scalar),
            )
            .run();
            let b = Simulator::new(
                &g,
                &Coin::factory(0.5),
                9,
                base.with_kernel(PropagationKernel::Bitset),
            )
            .run();
            assert_eq!(a, b, "heartbeat = {heartbeat}");
        }
    }

    #[test]
    fn stream_lossy_runs_fall_back_to_scalar_kernel_visibly() {
        // Under legacy stream draws the two kernel settings must still
        // agree — the bitset config is served by the scalar reference
        // path, because the loss RNG's consumption order defines the
        // semantics — and the substitution is recorded, not silent.
        let g = generators::cycle(20);
        let base = SimConfig::default().with_faults(FaultPlan {
            message_loss: 0.3,
            wake_rounds: vec![],
        });
        let a = Simulator::new(
            &g,
            &Coin::factory(0.5),
            13,
            base.clone().with_kernel(PropagationKernel::Scalar),
        )
        .run();
        let b = Simulator::new(
            &g,
            &Coin::factory(0.5),
            13,
            base.with_kernel(PropagationKernel::Bitset),
        )
        .run();
        assert_eq!(a, b);
        assert_eq!(a.kernel_used(), PropagationKernel::Scalar);
        assert_eq!(b.kernel_used(), PropagationKernel::Scalar);
    }

    #[test]
    fn counter_mode_honours_bitset_on_lossy_runs() {
        // The fixed bug: with counter draws, a lossy run asked to use the
        // bitset kernel actually uses it — and still matches the scalar
        // kernel bit for bit, because the per-delivery loss draws are
        // pure functions of (edge, round, exchange).
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        for (name, g) in [
            ("cycle", generators::cycle(20)),
            ("gnp", generators::gnp(60, 0.15, &mut rng)),
        ] {
            let base = SimConfig::default()
                .with_max_rounds(10_000)
                .with_rng_mode(RngMode::Counter)
                .with_faults(FaultPlan {
                    message_loss: 0.3,
                    wake_rounds: vec![],
                });
            let a = Simulator::new(
                &g,
                &Coin::factory(0.5),
                13,
                base.clone().with_kernel(PropagationKernel::Scalar),
            )
            .run();
            let b = Simulator::new(
                &g,
                &Coin::factory(0.5),
                13,
                base.with_kernel(PropagationKernel::Bitset),
            )
            .run();
            assert_eq!(a.kernel_used(), PropagationKernel::Scalar, "{name}");
            assert_eq!(b.kernel_used(), PropagationKernel::Bitset, "{name}");
            assert_eq!(a, b, "{name}");
        }
    }

    #[test]
    fn sharded_bitset_matches_sequential_for_any_shard_count() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(41);
        let g = generators::gnp(150, 0.1, &mut rng);
        for loss in [0.0, 0.25] {
            let base = SimConfig::default()
                .with_max_rounds(2_000)
                .with_rng_mode(RngMode::Counter)
                .with_faults(FaultPlan {
                    message_loss: loss,
                    wake_rounds: vec![],
                });
            let reference = Simulator::new(&g, &Coin::factory(0.5), 23, base.clone()).run();
            // 0 = one shard per core; outcomes must not depend on it.
            for shards in [2, 4, 7, 0] {
                let sharded = Simulator::new(
                    &g,
                    &Coin::factory(0.5),
                    23,
                    base.clone().with_shards(shards),
                )
                .run();
                assert_eq!(reference, sharded, "loss {loss} shards {shards}");
                assert_eq!(sharded.kernel_used(), PropagationKernel::Bitset);
            }
        }
    }

    #[test]
    fn counter_mode_is_deterministic_and_distinct_from_stream() {
        let g = generators::gnp(30, 0.3, &mut rand::rngs::SmallRng::seed_from_u64(3));
        let counter = SimConfig::default().with_rng_mode(RngMode::Counter);
        let a = Simulator::new(&g, &Coin::factory(0.5), 77, counter.clone()).run();
        let b = Simulator::new(&g, &Coin::factory(0.5), 77, counter).run();
        assert_eq!(a, b);
        // The two modes define different (equally valid) random
        // sequences; on 30 nodes a full-outcome coincidence is
        // vanishingly unlikely.
        let stream = Simulator::new(&g, &Coin::factory(0.5), 77, SimConfig::default()).run();
        assert_ne!(a, stream);
    }

    #[test]
    fn scenario_reference_path_records_scalar_kernel() {
        use crate::scenario::{ScenarioSpec, WakePattern};
        use std::sync::Arc;

        let g = generators::grid2d(6, 6);
        // A delivery-perturbing scenario forces (and records) the scalar
        // reference path even when the bitset kernel was requested, in
        // either RNG mode.
        for mode in [RngMode::Stream, RngMode::Counter] {
            let cfg = SimConfig::default()
                .with_max_rounds(5_000)
                .with_rng_mode(mode)
                .with_scenario(Arc::new(ScenarioSpec::uniform_loss(3, 0.2)));
            let outcome = Simulator::new(&g, &Coin::factory(0.5), 7, cfg).run();
            assert_eq!(outcome.kernel_used(), PropagationKernel::Scalar, "{mode:?}");
        }
        // A wake-only scenario keeps the configured kernel.
        let cfg = SimConfig::default().with_scenario(Arc::new(ScenarioSpec::new(3).with_wake(
            WakePattern::Wavefront {
                stride: 2,
                latest: 8,
            },
        )));
        let outcome = Simulator::new(&g, &Coin::factory(0.5), 7, cfg).run();
        assert_eq!(outcome.kernel_used(), PropagationKernel::Bitset);
    }

    #[test]
    fn wake_only_scenario_keeps_kernel_equivalence() {
        // A scenario that only staggers wake-ups must not force the
        // scalar path — and both kernels must agree under it.
        use crate::scenario::{ScenarioSpec, WakePattern};
        use std::sync::Arc;

        let g = generators::grid2d(8, 8);
        for wake in [
            WakePattern::Wavefront {
                stride: 3,
                latest: 12,
            },
            WakePattern::Alternating { round: 7 },
            WakePattern::DegreeTargeted {
                fraction: 0.3,
                latest: 10,
            },
            WakePattern::Random {
                fraction: 0.5,
                latest: 9,
            },
        ] {
            let spec = Arc::new(ScenarioSpec::new(5).with_wake(wake));
            let base = SimConfig::default()
                .with_mis_keeps_beeping(true)
                .with_scenario(spec);
            let a = Simulator::new(
                &g,
                &Coin::factory(0.5),
                9,
                base.clone().with_kernel(PropagationKernel::Scalar),
            )
            .run();
            let b = Simulator::new(
                &g,
                &Coin::factory(0.5),
                9,
                base.with_kernel(PropagationKernel::Bitset),
            )
            .run();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn scenario_wake_merges_with_fault_plan() {
        // Node 1 sleeps until max(plan, scenario) = 30; with heartbeats
        // the outcome matches the plain FaultPlan late-waker test.
        use crate::scenario::{ScenarioSpec, WakePattern};
        use std::sync::Arc;

        let g = generators::path(2);
        let cfg = SimConfig::default()
            .with_mis_keeps_beeping(true)
            .with_faults(FaultPlan {
                message_loss: 0.0,
                wake_rounds: vec![0, 12],
            })
            .with_scenario(Arc::new(ScenarioSpec::new(0).with_wake(
                WakePattern::Explicit {
                    rounds: vec![0, 30],
                },
            )));
        let outcome = Simulator::new(&g, &Coin::factory(1.0), 4, cfg).run();
        assert!(outcome.terminated());
        assert_eq!(outcome.mis(), vec![0]);
        assert_eq!(outcome.statuses()[1], NodeStatus::Covered);
        assert!(outcome.rounds() > 30, "node 1 woke too early");
    }

    #[test]
    fn scenario_runs_are_deterministic_and_kernel_independent() {
        use crate::scenario::{ChurnModel, DelayModel, LossModel, ScenarioSpec};
        use std::sync::Arc;

        let g = generators::gnp(40, 0.2, &mut rand::rngs::SmallRng::seed_from_u64(8));
        let spec = ScenarioSpec::new(31)
            .with_loss(LossModel::PerEdge { lo: 0.0, hi: 0.3 })
            .with_delay(DelayModel::Random { p: 0.2, max: 3 })
            .with_churn(ChurnModel::Random {
                p: 0.15,
                max_len: 4,
                earliest: 1,
                latest: 12,
            });
        let base = SimConfig::default()
            .with_max_rounds(5_000)
            .with_mis_keeps_beeping(true)
            .with_scenario(Arc::new(spec.clone()));
        let a = Simulator::new(&g, &Coin::factory(0.5), 17, base.clone()).run();
        let b = Simulator::new(&g, &Coin::factory(0.5), 17, base.clone()).run();
        assert_eq!(a, b);
        // The perturbing scenario forces the scalar reference path, so the
        // kernel setting cannot change the outcome.
        let c = Simulator::new(
            &g,
            &Coin::factory(0.5),
            17,
            base.clone().with_kernel(PropagationKernel::Scalar),
        )
        .run();
        assert_eq!(a, c);
        // And a rebuilt spec (fresh Arc, same fields) behaves identically.
        let rebuilt = base.with_scenario(Arc::new(spec));
        let d = Simulator::new(&g, &Coin::factory(0.5), 17, rebuilt).run();
        assert_eq!(a, d);
    }

    #[test]
    fn total_scenario_loss_blocks_all_inhibition() {
        // p = 1 uniform scenario loss on K₂: neither node ever hears the
        // other, so both always-beeping candidates join — the engine must
        // faithfully report the (invalid) result.
        use crate::scenario::ScenarioSpec;
        use std::sync::Arc;

        let g = generators::complete(2);
        let cfg = SimConfig::default()
            .with_max_rounds(50)
            .with_scenario(Arc::new(ScenarioSpec::uniform_loss(3, 1.0)));
        let outcome = Simulator::new(&g, &Coin::factory(1.0), 1, cfg).run();
        assert!(outcome.terminated());
        assert_eq!(outcome.mis(), vec![0, 1]);
    }

    #[test]
    fn delayed_delivery_arrives_late() {
        // Path 0-1 with every delivery delayed by exactly 1 round: in
        // round 0 nobody hears anything, so both p = 1 candidates join.
        // The delay semantics are what makes that possible.
        use crate::scenario::{DelayModel, ScenarioSpec};
        use std::sync::Arc;

        let g = generators::path(2);
        let cfg = SimConfig::default()
            .with_max_rounds(50)
            .with_scenario(Arc::new(
                ScenarioSpec::new(0).with_delay(DelayModel::Random { p: 1.0, max: 1 }),
            ));
        let outcome = Simulator::new(&g, &Coin::factory(1.0), 1, cfg).run();
        assert!(outcome.terminated());
        assert_eq!(outcome.rounds(), 1);
        assert_eq!(outcome.mis(), vec![0, 1]);
    }

    #[test]
    fn churned_out_node_is_frozen_not_dead() {
        // Path 0-1, node 1 absent for rounds 0..5, p = 1 processes with
        // heartbeats: node 0 joins alone in round 0; when node 1 returns
        // it hears the heartbeat and terminates covered.
        use crate::scenario::{ChurnModel, ChurnWindow, ScenarioSpec};
        use std::sync::Arc;

        let g = generators::path(2);
        let cfg = SimConfig::default()
            .with_max_rounds(100)
            .with_mis_keeps_beeping(true)
            .with_scenario(Arc::new(ScenarioSpec::new(0).with_churn(
                ChurnModel::Explicit {
                    windows: vec![ChurnWindow {
                        node: 1,
                        from: 0,
                        until: 5,
                    }],
                },
            )));
        let outcome = Simulator::new(&g, &Coin::factory(1.0), 2, cfg).run();
        assert!(outcome.terminated());
        assert_eq!(outcome.mis(), vec![0]);
        assert_eq!(outcome.statuses()[1], NodeStatus::Covered);
        assert!(outcome.rounds() >= 5, "node 1 decided while absent");
    }

    #[test]
    fn debug_format() {
        let g = generators::path(3);
        let sim = Simulator::new(&g, &Coin::factory(0.5), 0, SimConfig::default());
        assert!(format!("{sim:?}").contains("Simulator"));
        let stepper = sim.into_stepper();
        assert!(format!("{stepper:?}").contains("Stepper"));
    }
}
