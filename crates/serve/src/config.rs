//! Daemon configuration: everything the operator chooses at startup.
//!
//! Nothing here enters a cache key — the cache is addressed purely by
//! request content, so two daemons with different worker counts, frame
//! caps, or cache directories agree byte-for-byte on every payload.

use std::path::PathBuf;

/// Default listen address (`--addr`).
pub const DEFAULT_ADDR: &str = "127.0.0.1:7713";

/// Default number of engine worker threads (`--workers`).
pub const DEFAULT_WORKERS: usize = 2;

/// Default intra-job parallelism handed to `RunPlan::with_jobs`
/// (`--job-jobs`). Results are bit-identical for any value; this only
/// trades worker-thread fan-out against per-job fan-out.
pub const DEFAULT_JOB_JOBS: usize = 1;

/// Default request-frame cap in bytes (`--max-frame-bytes`): DIMACS
/// uploads ride inside one JSON line, so the cap must fit a graph.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// Startup configuration for [`Server`](crate::Server).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7713`; port `0` picks a free port
    /// (the test suites run on `127.0.0.1:0`).
    pub addr: String,
    /// Directory persisting cache entries across restarts (`None` keeps
    /// the cache in memory only).
    pub cache_dir: Option<PathBuf>,
    /// Engine worker threads draining the job queue.
    pub workers: usize,
    /// `RunPlan::with_jobs` value used inside each job.
    pub job_jobs: usize,
    /// Longest accepted request line, in bytes (excluding the newline).
    pub max_frame_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: DEFAULT_ADDR.to_owned(),
            cache_dir: None,
            workers: DEFAULT_WORKERS,
            job_jobs: DEFAULT_JOB_JOBS,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

impl ServeConfig {
    /// Replaces the listen address.
    #[must_use]
    pub fn with_addr(mut self, addr: &str) -> Self {
        self.addr = addr.to_owned();
        self
    }

    /// Persists cache entries under `dir` (created on bind if missing).
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Replaces the worker-thread count (clamped to at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Replaces the intra-job `RunPlan` parallelism (clamped to at
    /// least 1).
    #[must_use]
    pub fn with_job_jobs(mut self, jobs: usize) -> Self {
        self.job_jobs = jobs.max(1);
        self
    }

    /// Replaces the request-frame byte cap.
    #[must_use]
    pub fn with_max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_replace_fields() {
        let c = ServeConfig::default()
            .with_addr("127.0.0.1:0")
            .with_cache_dir("/tmp/x")
            .with_workers(0)
            .with_job_jobs(0)
            .with_max_frame_bytes(512);
        assert_eq!(c.addr, "127.0.0.1:0");
        assert_eq!(c.cache_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
        // Zero worker counts clamp to one: a daemon that can never drain
        // its queue is a misconfiguration, not a mode.
        assert_eq!(c.workers, 1);
        assert_eq!(c.job_jobs, 1);
        assert_eq!(c.max_frame_bytes, 512);
    }

    #[test]
    fn defaults_are_the_documented_constants() {
        let c = ServeConfig::default();
        assert_eq!(c.addr, DEFAULT_ADDR);
        assert_eq!(c.cache_dir, None);
        assert_eq!(c.workers, DEFAULT_WORKERS);
        assert_eq!(c.job_jobs, DEFAULT_JOB_JOBS);
        assert_eq!(c.max_frame_bytes, DEFAULT_MAX_FRAME_BYTES);
    }
}
