//! Wire framing and typed error replies.
//!
//! The protocol is one JSON object per line in each direction. Framing is
//! deliberately dumb — `\n`-delimited, no length prefixes — so `nc` and a
//! shell loop are valid clients. The subtlety lives in the *failure*
//! paths, which the protocol test suite pins:
//!
//! * an **oversized** line is drained to its newline and rejected with
//!   `frame_too_large`, leaving the connection usable for the next frame;
//! * a **truncated** line (EOF before `\n`) terminates the connection
//!   without a reply — half a frame is never parsed;
//! * reads poll in 100 ms slices so a connection blocked mid-line still
//!   observes daemon shutdown.

use std::io::{BufRead, ErrorKind};
use std::sync::atomic::{AtomicBool, Ordering};

use mis_beeping::json::Json;

/// One read attempt from a connection.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (without its `\n`, `\r\n` accepted).
    Line(String),
    /// The line exceeded the frame cap; it was drained, the connection is
    /// still usable.
    TooLong,
    /// The line was not valid UTF-8; it was drained, the connection is
    /// still usable.
    BadUtf8,
    /// Clean end of stream at a frame boundary.
    Eof,
    /// End of stream in the middle of a frame.
    Truncated,
    /// The daemon is shutting down.
    Shutdown,
}

/// Reads one newline-delimited frame from `reader`, treating lines longer
/// than `max_bytes` as [`Frame::TooLong`] (drained, not parsed) and
/// polling `shutdown` whenever the read times out.
///
/// The reader's stream should carry a read timeout (the server uses
/// 100 ms); `WouldBlock`/`TimedOut` are treated as poll ticks, any other
/// I/O error as end of stream. While a line is over the cap its bytes are
/// discarded as they arrive, so a hostile unbounded line costs bounded
/// memory.
pub fn read_frame<R: BufRead>(reader: &mut R, max_bytes: usize, shutdown: &AtomicBool) -> Frame {
    let mut buf: Vec<u8> = Vec::new();
    let mut dropped = false;
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return Frame::Shutdown;
        }
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => {
                return if buf.is_empty() && !dropped {
                    Frame::Eof
                } else {
                    Frame::Truncated
                };
            }
            Ok(_) if buf.last() == Some(&b'\n') => {
                buf.pop();
                if buf.last() == Some(&b'\r') {
                    buf.pop();
                }
                if dropped || buf.len() > max_bytes {
                    return Frame::TooLong;
                }
                return match String::from_utf8(buf) {
                    Ok(line) => Frame::Line(line),
                    Err(_) => Frame::BadUtf8,
                };
            }
            // Data arrived but no newline yet (partial read before a
            // timeout surfaced); fall through to the cap check below.
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                return if buf.is_empty() && !dropped {
                    Frame::Eof
                } else {
                    Frame::Truncated
                };
            }
        }
        if buf.len() > max_bytes {
            buf.clear();
            dropped = true;
        }
    }
}

/// Builds the standard error reply `{"ok": false, "error": {...}}`.
#[must_use]
pub fn error_reply(code: &str, message: &str) -> Json {
    Json::Obj(vec![
        ("ok".to_owned(), Json::Bool(false)),
        (
            "error".to_owned(),
            Json::Obj(vec![
                ("code".to_owned(), Json::Str(code.to_owned())),
                ("message".to_owned(), Json::Str(message.to_owned())),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn quiet() -> AtomicBool {
        AtomicBool::new(false)
    }

    #[test]
    fn reads_lines_and_strips_crlf() {
        let mut r = BufReader::new(&b"one\ntwo\r\n"[..]);
        assert_eq!(read_frame(&mut r, 64, &quiet()), Frame::Line("one".into()));
        assert_eq!(read_frame(&mut r, 64, &quiet()), Frame::Line("two".into()));
        assert_eq!(read_frame(&mut r, 64, &quiet()), Frame::Eof);
    }

    #[test]
    fn oversized_line_is_drained_and_connection_stays_usable() {
        let long = "x".repeat(100);
        let input = format!("{long}\nping\n");
        let mut r = BufReader::new(input.as_bytes());
        assert_eq!(read_frame(&mut r, 16, &quiet()), Frame::TooLong);
        assert_eq!(read_frame(&mut r, 16, &quiet()), Frame::Line("ping".into()));
    }

    #[test]
    fn truncated_line_is_not_parsed() {
        let mut r = BufReader::new(&b"no newline"[..]);
        assert_eq!(read_frame(&mut r, 64, &quiet()), Frame::Truncated);
    }

    #[test]
    fn invalid_utf8_is_rejected_not_panicked() {
        let mut r = BufReader::new(&b"\xff\xfe\nping\n"[..]);
        assert_eq!(read_frame(&mut r, 64, &quiet()), Frame::BadUtf8);
        assert_eq!(read_frame(&mut r, 64, &quiet()), Frame::Line("ping".into()));
    }

    #[test]
    fn boundary_length_is_accepted_one_past_is_not() {
        let exact = "y".repeat(16);
        let input = format!("{exact}\n{exact}z\n");
        let mut r = BufReader::new(input.as_bytes());
        assert_eq!(read_frame(&mut r, 16, &quiet()), Frame::Line(exact));
        assert_eq!(read_frame(&mut r, 16, &quiet()), Frame::TooLong);
    }

    #[test]
    fn shutdown_flag_wins_over_pending_input() {
        let stop = AtomicBool::new(true);
        let mut r = BufReader::new(&b"ping\n"[..]);
        assert_eq!(read_frame(&mut r, 64, &stop), Frame::Shutdown);
    }

    #[test]
    fn error_reply_shape() {
        let e = error_reply("bad_json", "oops");
        assert_eq!(e.get("ok"), Some(&Json::Bool(false)));
        let inner = e.get("error").unwrap();
        assert_eq!(inner.get("code").and_then(Json::as_str), Some("bad_json"));
        assert_eq!(inner.get("message").and_then(Json::as_str), Some("oops"));
    }
}
