//! The daemon: listener lifecycle, connection threads, and engine
//! workers.
//!
//! Threading model — three kinds of threads, all owned by [`Server::run`]:
//!
//! * the **accept loop** (the calling thread), woken from `accept()` by a
//!   self-connection when shutdown is requested;
//! * one detached **connection thread** per client, reading frames with a
//!   100 ms poll timeout so it observes shutdown even mid-line; a slow or
//!   stalled client therefore blocks only its own thread, never the
//!   queue or other connections;
//! * `workers` **engine workers** draining the job queue; each re-checks
//!   the store before running (in-flight duplicate submissions collapse
//!   to one engine execution) and publishes its payload under the job's
//!   content address. A panicking engine marks the job `error` and the
//!   worker survives.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::config::ServeConfig;
use crate::handlers::{self, Reply};
use crate::jobs::{JobState, JobTable};
use crate::protocol::{error_reply, read_frame, Frame};
use crate::store::ResultStore;

/// Shared state every connection and worker sees.
pub struct ServerState {
    /// Startup configuration.
    pub config: ServeConfig,
    /// Content-addressed result store.
    pub store: ResultStore,
    /// Job registry and FIFO queue.
    pub jobs: JobTable,
    /// Engine runs executed since startup (cache hits add zero) — the
    /// counter the cache tests pin "zero additional work" against.
    pub engine_runs: AtomicU64,
    /// Raised once; every loop polls it.
    pub shutdown: AtomicBool,
    /// The bound listen address.
    pub addr: SocketAddr,
    /// Startup wall-clock timestamp (operator telemetry only).
    pub started_unix_ms: u64,
}

/// Milliseconds since the Unix epoch, for job/startup telemetry. Never
/// feeds payloads or cache keys.
pub(crate) fn now_unix_ms() -> u64 {
    // detlint: allow(D03) -- submission/startup timestamps are operator telemetry, never part of payloads or cache keys
    let now = std::time::SystemTime::now();
    now.duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds `config.addr` and prepares the store (loading a configured
    /// cache directory).
    ///
    /// # Errors
    ///
    /// Propagates bind and cache-directory failures.
    pub fn bind(config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let store = match &config.cache_dir {
            Some(dir) => ResultStore::with_dir(dir)?,
            None => ResultStore::in_memory(),
        };
        Ok(Self {
            listener,
            state: Arc::new(ServerState {
                config,
                store,
                jobs: JobTable::new(),
                engine_runs: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                addr,
                started_unix_ms: now_unix_ms(),
            }),
        })
    }

    /// The actually bound address (resolves a `:0` port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// The shared state (tests read `engine_runs` and cache stats from
    /// here).
    #[must_use]
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Runs the daemon on the calling thread until a `shutdown` command
    /// (or [`ServerHandle::stop`]) raises the flag. Worker threads are
    /// joined before returning; connection threads are detached and exit
    /// on their next 100 ms poll.
    ///
    /// # Errors
    ///
    /// Propagates worker spawn failures; accept errors are tolerated.
    pub fn run(self) -> std::io::Result<()> {
        let state = self.state;
        let workers: Vec<JoinHandle<()>> = (0..state.config.workers)
            .map(|i| {
                let st = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("mis-serve-worker-{i}"))
                    .spawn(move || worker_loop(&st))
            })
            .collect::<std::io::Result<_>>()?;
        for conn in self.listener.incoming() {
            if state.shutdown.load(Ordering::Relaxed) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let st = Arc::clone(&state);
            let _ = std::thread::Builder::new()
                .name("mis-serve-conn".to_owned())
                .spawn(move || {
                    let _ = handle_connection(&st, stream);
                });
        }
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }

    /// Binds and runs on a background thread, returning a handle with the
    /// resolved address — the entry point used by the test suites.
    ///
    /// # Errors
    ///
    /// Propagates [`Server::bind`] and spawn failures.
    pub fn spawn(config: ServeConfig) -> std::io::Result<ServerHandle> {
        let server = Self::bind(config)?;
        let addr = server.local_addr();
        let state = server.state();
        let thread = std::thread::Builder::new()
            .name("mis-serve-accept".to_owned())
            .spawn(move || {
                let _ = server.run();
            })?;
        Ok(ServerHandle {
            addr,
            state,
            thread,
        })
    }
}

/// A daemon running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    thread: JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state.
    #[must_use]
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Waits for the daemon to exit (something else must raise shutdown —
    /// typically a client `shutdown` command).
    pub fn join(self) {
        let _ = self.thread.join();
    }

    /// Raises shutdown, wakes the accept loop, and joins.
    pub fn stop(self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
        wake_accept(&self.state);
        self.join();
    }
}

/// Unblocks `accept()` after the shutdown flag is raised by making one
/// throwaway connection to ourselves.
fn wake_accept(state: &ServerState) {
    let _ = TcpStream::connect(state.addr);
}

fn worker_loop(state: &ServerState) {
    while let Some(id) = state.jobs.pop_wait(&state.shutdown) {
        let Some(job) = state.jobs.claim(id) else {
            continue;
        };
        // Dequeue-time re-check: a duplicate submitted while this key was
        // queued is served from the first execution's payload.
        if state.store.peek(&job.key).is_some() {
            state.jobs.mark_done(id, true);
            continue;
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            crate::jobs::execute_request(
                &job.request,
                &job.graph,
                state.config.job_jobs,
                &job.progress,
                &state.engine_runs,
            )
        }));
        match outcome {
            Ok(payload) => {
                state.store.insert(&job.key, payload);
                state.jobs.mark_done(id, false);
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "engine panicked".to_owned());
                state.jobs.mark_error(id, format!("engine panicked: {msg}"));
            }
        }
    }
}

fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = std::io::BufReader::new(stream);
    loop {
        match read_frame(&mut reader, state.config.max_frame_bytes, &state.shutdown) {
            Frame::Line(line) => match handlers::dispatch(state, &line) {
                Reply::Single(text) => write_line(&mut writer, &text)?,
                Reply::Watch { job } => stream_watch(state, &mut writer, job)?,
                Reply::Shutdown(text) => {
                    write_line(&mut writer, &text)?;
                    state.shutdown.store(true, Ordering::Relaxed);
                    wake_accept(state);
                    return Ok(());
                }
            },
            Frame::TooLong => {
                let text = error_reply(
                    "frame_too_large",
                    &format!(
                        "request line exceeds {} bytes",
                        state.config.max_frame_bytes
                    ),
                )
                .render();
                write_line(&mut writer, &text)?;
            }
            Frame::BadUtf8 => {
                let text = error_reply("bad_json", "request line is not valid UTF-8").render();
                write_line(&mut writer, &text)?;
            }
            Frame::Eof | Frame::Truncated | Frame::Shutdown => return Ok(()),
        }
    }
}

fn write_line(writer: &mut TcpStream, text: &str) -> std::io::Result<()> {
    writer.write_all(text.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Streams status lines for `job` until it finishes: one line per
/// observable change, always ending with the terminal `done`/`error`
/// status (or stopping silently on daemon shutdown).
fn stream_watch(state: &ServerState, writer: &mut TcpStream, job: u64) -> std::io::Result<()> {
    let mut last: Option<String> = None;
    loop {
        let Some(snap) = state.jobs.snapshot(job) else {
            let text = error_reply("unknown_job", &format!("no job {job}")).render();
            return write_line(writer, &text);
        };
        let finished = matches!(snap.state, JobState::Done | JobState::Error(_));
        let line = handlers::status_json(&snap).render();
        if last.as_ref() != Some(&line) {
            write_line(writer, &line)?;
            last = Some(line);
        }
        if finished || state.shutdown.load(Ordering::Relaxed) {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}
