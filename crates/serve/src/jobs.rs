//! The job table, FIFO queue, and the request→engine translation that
//! workers execute.
//!
//! A submitted request becomes a [`Job`](JobSnapshot) with a monotonically
//! increasing id. Worker threads pop ids off a FIFO queue, re-check the
//! store (so concurrent identical submissions run the engine once at
//! most in the common case), and execute the request through the same
//! unified [`Engine`](mis_core::Engine) path every CLI batch uses:
//! [`RunPlan::execute_observed`] over the work-stealing runner, on the
//! backend the request named. Payload bytes are therefore identical to a
//! solo run of the same (graph, config, seed range) — which the protocol
//! test suite asserts record by record.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use mis_baselines::{
    GreedyLocalFactory, LubyMarkingFactory, LubyPriorityFactory, MessageEngine, MessageFactory,
    MetivierFactory, MsgOf,
};
use mis_beeping::json::Json;
use mis_core::engine::{AlgorithmEngine, EngineRecord};
use mis_core::{BatchReport, RunPlan};
use mis_experiments::{run_with_backend, BackendOp};
use mis_graph::{Graph, GraphView};

use crate::request::{AlgorithmSpec, RunRequest};

/// Lifecycle of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Payload available in the store.
    Done,
    /// Execution failed; the message explains why.
    Error(String),
}

impl JobState {
    /// Wire name of the state.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Error(_) => "error",
        }
    }
}

struct Job {
    key: String,
    request: RunRequest,
    graph: Arc<Graph>,
    state: JobState,
    cached: bool,
    total_runs: usize,
    progress: Arc<AtomicUsize>,
    created_unix_ms: u64,
}

/// Point-in-time copy of a job's observable fields, handed to the status
/// and fetch handlers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSnapshot {
    /// Job id.
    pub id: u64,
    /// Content-address of the result.
    pub key: String,
    /// Current state.
    pub state: JobState,
    /// Whether the result came from the cache rather than an engine run.
    pub cached: bool,
    /// Runs completed so far.
    pub progress: usize,
    /// Runs requested.
    pub total: usize,
    /// Submission wall-clock timestamp (operator telemetry only — never
    /// part of payloads or cache keys).
    pub created_unix_ms: u64,
}

/// Everything a worker needs to execute one claimed job.
pub struct ClaimedJob {
    /// Job id.
    pub id: u64,
    /// Content-address to publish the payload under.
    pub key: String,
    /// The validated request.
    pub request: RunRequest,
    /// The graph built at submission time.
    pub graph: Arc<Graph>,
    /// Shared per-run progress counter.
    pub progress: Arc<AtomicUsize>,
}

struct Inner {
    jobs: BTreeMap<u64, Job>,
    queue: VecDeque<u64>,
    next_id: u64,
}

/// Thread-safe job registry plus FIFO work queue.
pub struct JobTable {
    inner: Mutex<Inner>,
    ready: Condvar,
}

impl Default for JobTable {
    fn default() -> Self {
        Self::new()
    }
}

impl JobTable {
    /// An empty table; ids start at 1.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner {
                jobs: BTreeMap::new(),
                queue: VecDeque::new(),
                next_id: 1,
            }),
            ready: Condvar::new(),
        }
    }

    /// Registers a queued job and wakes one worker. Returns its id.
    pub fn enqueue(
        &self,
        key: String,
        request: RunRequest,
        graph: Arc<Graph>,
        created_unix_ms: u64,
    ) -> u64 {
        let total_runs = request.runs;
        let mut inner = self.inner.lock().expect("job table poisoned");
        let id = inner.next_id;
        inner.next_id += 1;
        inner.jobs.insert(
            id,
            Job {
                key,
                request,
                graph,
                state: JobState::Queued,
                cached: false,
                total_runs,
                progress: Arc::new(AtomicUsize::new(0)),
                created_unix_ms,
            },
        );
        inner.queue.push_back(id);
        drop(inner);
        self.ready.notify_one();
        id
    }

    /// Registers a job that was answered from the cache at submission
    /// time: born `Done`, `cached`, with full progress.
    pub fn insert_done(
        &self,
        key: String,
        request: RunRequest,
        graph: Arc<Graph>,
        created_unix_ms: u64,
    ) -> u64 {
        let total_runs = request.runs;
        let mut inner = self.inner.lock().expect("job table poisoned");
        let id = inner.next_id;
        inner.next_id += 1;
        inner.jobs.insert(
            id,
            Job {
                key,
                request,
                graph,
                state: JobState::Done,
                cached: true,
                total_runs,
                progress: Arc::new(AtomicUsize::new(total_runs)),
                created_unix_ms,
            },
        );
        id
    }

    /// Blocks until a job id is available or `shutdown` is raised,
    /// polling the flag every 100 ms.
    pub fn pop_wait(&self, shutdown: &AtomicBool) -> Option<u64> {
        let mut inner = self.inner.lock().expect("job table poisoned");
        loop {
            if shutdown.load(Ordering::Relaxed) {
                return None;
            }
            if let Some(id) = inner.queue.pop_front() {
                return Some(id);
            }
            let (guard, _) = self
                .ready
                .wait_timeout(inner, Duration::from_millis(100))
                .expect("job table poisoned");
            inner = guard;
        }
    }

    /// Marks `id` running and returns what its worker needs.
    #[must_use]
    pub fn claim(&self, id: u64) -> Option<ClaimedJob> {
        let mut inner = self.inner.lock().expect("job table poisoned");
        let job = inner.jobs.get_mut(&id)?;
        job.state = JobState::Running;
        Some(ClaimedJob {
            id,
            key: job.key.clone(),
            request: job.request.clone(),
            graph: Arc::clone(&job.graph),
            progress: Arc::clone(&job.progress),
        })
    }

    /// Marks `id` done, recording whether the payload came from the
    /// cache.
    pub fn mark_done(&self, id: u64, cached: bool) {
        let mut inner = self.inner.lock().expect("job table poisoned");
        if let Some(job) = inner.jobs.get_mut(&id) {
            job.state = JobState::Done;
            job.cached = cached;
            if cached {
                job.progress.store(job.total_runs, Ordering::Relaxed);
            }
        }
    }

    /// Marks `id` failed with a message.
    pub fn mark_error(&self, id: u64, message: impl Into<String>) {
        let mut inner = self.inner.lock().expect("job table poisoned");
        if let Some(job) = inner.jobs.get_mut(&id) {
            job.state = JobState::Error(message.into());
        }
    }

    /// A point-in-time snapshot of `id`.
    #[must_use]
    pub fn snapshot(&self, id: u64) -> Option<JobSnapshot> {
        let inner = self.inner.lock().expect("job table poisoned");
        inner.jobs.get(&id).map(|job| JobSnapshot {
            id,
            key: job.key.clone(),
            state: job.state.clone(),
            cached: job.cached,
            progress: job.progress.load(Ordering::Relaxed),
            total: job.total_runs,
            created_unix_ms: job.created_unix_ms,
        })
    }
}

// ---- Request → engine execution ------------------------------------------

/// Executes a validated request on its graph through the unified engine
/// path and renders the payload JSON. Pure in (graph, request): repeated
/// calls return byte-identical strings. `observe_run` fires once per
/// completed run (progress + engine-run accounting).
#[must_use]
pub fn execute_request(
    request: &RunRequest,
    graph: &Graph,
    jobs: usize,
    progress: &AtomicUsize,
    engine_runs: &AtomicU64,
) -> String {
    run_with_backend(
        graph,
        request.backend,
        ExecOp {
            request,
            jobs,
            progress,
            engine_runs,
        },
    )
}

struct ExecOp<'a> {
    request: &'a RunRequest,
    jobs: usize,
    progress: &'a AtomicUsize,
    engine_runs: &'a AtomicU64,
}

impl BackendOp for ExecOp<'_> {
    type Out = String;

    fn run<G: GraphView + ?Sized>(self, g: &G) -> String {
        let req = self.request;
        match req.algorithm {
            AlgorithmSpec::LubyPriority => self.message(g, LubyPriorityFactory::new()),
            AlgorithmSpec::LubyMarking => self.message(g, LubyMarkingFactory::new()),
            AlgorithmSpec::Metivier => self.message(g, MetivierFactory::new()),
            AlgorithmSpec::GreedyLocal => self.message(g, GreedyLocalFactory::new()),
            _ => {
                let algorithm = req
                    .algorithm
                    .to_algorithm()
                    .expect("beeping family validated at parse time");
                let engine = AlgorithmEngine::new(algorithm).with_config(req.config.clone());
                self.run_plan(g, engine)
            }
        }
    }
}

impl ExecOp<'_> {
    fn message<G, F>(&self, g: &G, factory: F) -> String
    where
        G: GraphView + ?Sized,
        F: MessageFactory + Sync,
        F::Process: Send,
        MsgOf<F>: Send + Sync,
    {
        let engine = MessageEngine::new(factory)
            .with_max_rounds(self.request.config.max_rounds)
            .with_shards(self.request.config.shards);
        self.run_plan(g, engine)
    }

    fn run_plan<G, E>(&self, g: &G, engine: E) -> String
    where
        G: GraphView + ?Sized,
        E: mis_core::Engine<G>,
    {
        let report = RunPlan::for_engine(engine, self.request.runs)
            .with_master_seed(self.request.seed)
            .with_jobs(self.jobs)
            .execute_observed(g, |_| {
                self.progress.fetch_add(1, Ordering::Relaxed);
                self.engine_runs.fetch_add(1, Ordering::Relaxed);
            });
        render_payload(&report)
    }
}

/// Renders a batch report as the payload schema: per-run records (seed,
/// rounds, MIS size, cost, bits per channel, termination) plus the
/// aggregate summary. Key order is fixed and floats use the shortest
/// round-trip form, so equal reports render byte-identically.
fn render_payload<R: EngineRecord>(report: &BatchReport<R>) -> String {
    let records: Vec<Json> = report
        .records()
        .iter()
        .map(|r| {
            Json::Obj(vec![
                (
                    "bits_per_channel".to_owned(),
                    Json::Num(r.bits_per_channel()),
                ),
                ("cost".to_owned(), Json::Num(r.cost())),
                ("mis_size".to_owned(), Json::Num(r.mis_size() as f64)),
                ("rounds".to_owned(), Json::Num(f64::from(r.rounds()))),
                ("seed".to_owned(), Json::u64_str(r.seed())),
                ("terminated".to_owned(), Json::Bool(r.terminated())),
            ])
        })
        .collect();
    let summary = Json::Obj(vec![
        ("cost_mean".to_owned(), Json::Num(report.cost().mean())),
        ("cost_std".to_owned(), Json::Num(report.cost().std_dev())),
        (
            "mis_size_mean".to_owned(),
            Json::Num(report.mis_size().mean()),
        ),
        ("rounds_mean".to_owned(), Json::Num(report.rounds().mean())),
        (
            "rounds_std".to_owned(),
            Json::Num(report.rounds().std_dev()),
        ),
        ("runs".to_owned(), Json::Num(report.records().len() as f64)),
        (
            "unterminated".to_owned(),
            Json::Num(report.unterminated() as f64),
        ),
    ]);
    Json::Obj(vec![
        ("records".to_owned(), Json::Arr(records)),
        ("summary".to_owned(), summary),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graph::generators;

    fn request(text: &str) -> RunRequest {
        RunRequest::parse(&Json::parse(text).unwrap()).unwrap()
    }

    #[test]
    fn queue_is_fifo_and_states_progress() {
        let table = JobTable::new();
        let g = Arc::new(generators::cycle(6));
        let req = request(
            r#"{"graph": {"generator": "cycle", "n": 6},
                "algorithm": {"family": "feedback"}, "runs": 2}"#,
        );
        let a = table.enqueue("k1".into(), req.clone(), Arc::clone(&g), 0);
        let b = table.enqueue("k2".into(), req, g, 0);
        assert!(a < b);
        let stop = AtomicBool::new(false);
        assert_eq!(table.pop_wait(&stop), Some(a));
        assert_eq!(table.pop_wait(&stop), Some(b));
        let claimed = table.claim(a).unwrap();
        assert_eq!(claimed.key, "k1");
        assert_eq!(table.snapshot(a).unwrap().state, JobState::Running);
        table.mark_done(a, false);
        assert_eq!(table.snapshot(a).unwrap().state, JobState::Done);
        table.mark_error(b, "boom");
        assert_eq!(
            table.snapshot(b).unwrap().state,
            JobState::Error("boom".into())
        );
        stop.store(true, Ordering::Relaxed);
        assert_eq!(table.pop_wait(&stop), None);
    }

    #[test]
    fn cache_hit_jobs_are_born_done() {
        let table = JobTable::new();
        let g = Arc::new(generators::cycle(6));
        let req = request(
            r#"{"graph": {"generator": "cycle", "n": 6},
                "algorithm": {"family": "feedback"}, "runs": 3}"#,
        );
        let id = table.insert_done("k".into(), req, g, 7);
        let snap = table.snapshot(id).unwrap();
        assert_eq!(snap.state, JobState::Done);
        assert!(snap.cached);
        assert_eq!(snap.progress, 3);
        assert_eq!(snap.total, 3);
        assert_eq!(snap.created_unix_ms, 7);
    }

    #[test]
    fn execution_matches_a_solo_run_plan_and_counts_runs() {
        let req = request(
            r#"{"graph": {"generator": "grid2d", "rows": 4, "cols": 5},
                "algorithm": {"family": "feedback"}, "seed": "11", "runs": 5}"#,
        );
        let g = req.graph.build().unwrap();
        let progress = AtomicUsize::new(0);
        let engine_runs = AtomicU64::new(0);
        let payload = execute_request(&req, &g, 1, &progress, &engine_runs);
        assert_eq!(progress.load(Ordering::Relaxed), 5);
        assert_eq!(engine_runs.load(Ordering::Relaxed), 5);
        // Same bytes again — execution is pure in (graph, request).
        let again = execute_request(&req, &g, 1, &progress, &engine_runs);
        assert_eq!(payload, again);
        // And the records agree with a solo RunPlan of the same shape.
        let solo = RunPlan::new(mis_core::Algorithm::feedback(), 5)
            .with_master_seed(11)
            .execute(&g);
        let parsed = Json::parse(&payload).unwrap();
        let records = parsed.get("records").and_then(Json::as_arr).unwrap();
        assert_eq!(records.len(), 5);
        for (json, record) in records.iter().zip(solo.records()) {
            assert_eq!(
                json.get("seed").and_then(Json::as_u64_str),
                Some(record.seed)
            );
            assert_eq!(
                json.get("rounds").and_then(Json::as_u32),
                Some(record.rounds)
            );
            assert_eq!(
                json.get("mis_size").and_then(Json::as_u32),
                Some(record.mis_size as u32)
            );
        }
    }

    #[test]
    fn message_families_execute_through_the_same_path() {
        let req = request(
            r#"{"graph": {"generator": "cycle", "n": 12},
                "algorithm": {"family": "luby_priority"}, "seed": "5", "runs": 3}"#,
        );
        let g = req.graph.build().unwrap();
        let progress = AtomicUsize::new(0);
        let engine_runs = AtomicU64::new(0);
        let payload = execute_request(&req, &g, 1, &progress, &engine_runs);
        assert_eq!(progress.load(Ordering::Relaxed), 3);
        let parsed = Json::parse(&payload).unwrap();
        let summary = parsed.get("summary").unwrap();
        assert_eq!(summary.get("runs").and_then(Json::as_u32), Some(3));
        assert_eq!(summary.get("unterminated").and_then(Json::as_u32), Some(0));
    }
}
