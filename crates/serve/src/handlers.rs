//! One function per protocol command.
//!
//! Every command is a JSON object with a `"cmd"` field; every reply is a
//! JSON object with an `"ok"` boolean. Failures are *replies*, not
//! connection state — after any error the connection accepts the next
//! frame (the protocol suite sends a malformed burst and then a `ping` on
//! the same socket).
//!
//! | `cmd` | Reply |
//! |-------|-------|
//! | `ping` | `{"ok": true, "pong": true}` |
//! | `submit` | job ack: `job` id, cache `key`, `cached`, initial `state` |
//! | `status` | job snapshot: `state`, `progress`/`total`, `cached` |
//! | `watch` | a *stream* of status lines until the job finishes |
//! | `fetch` | the stored payload, spliced byte-identically into `result` |
//! | `cache_stats` | store counters plus the daemon's `engine_runs` |
//! | `shutdown` | `{"ok": true, "stopping": true}`, then the daemon exits |

use std::sync::Arc;

use mis_beeping::json::Json;

use crate::jobs::{JobSnapshot, JobState};
use crate::protocol::error_reply;
use crate::request::{cache_key, RunRequest};
use crate::server::{now_unix_ms, ServerState};

/// What the connection loop should do with a dispatched command.
pub enum Reply {
    /// Write one reply line.
    Single(String),
    /// Stream status lines for a job until it finishes.
    Watch {
        /// The job to watch.
        job: u64,
    },
    /// Write one reply line, then stop the daemon.
    Shutdown(String),
}

fn err(code: &str, message: &str) -> Reply {
    Reply::Single(error_reply(code, message).render())
}

/// Dispatches one request line to its handler.
#[must_use]
pub fn dispatch(state: &Arc<ServerState>, line: &str) -> Reply {
    let doc = match Json::parse(line) {
        Ok(doc) => doc,
        Err(e) => return err("bad_json", &e.to_string()),
    };
    let Some(cmd) = doc.get("cmd").and_then(Json::as_str) else {
        return err("bad_request", "request needs a \"cmd\" string");
    };
    match cmd {
        "ping" => Reply::Single(
            Json::Obj(vec![
                ("ok".to_owned(), Json::Bool(true)),
                ("pong".to_owned(), Json::Bool(true)),
            ])
            .render(),
        ),
        "submit" => submit(state, doc.get("request")),
        "status" => match job_id(&doc) {
            Ok(job) => match state.jobs.snapshot(job) {
                Some(snap) => Reply::Single(status_json(&snap).render()),
                None => err("unknown_job", &format!("no job {job}")),
            },
            Err(reply) => reply,
        },
        "watch" => match job_id(&doc) {
            Ok(job) if state.jobs.snapshot(job).is_some() => Reply::Watch { job },
            Ok(job) => err("unknown_job", &format!("no job {job}")),
            Err(reply) => reply,
        },
        "fetch" => match job_id(&doc) {
            Ok(job) => fetch(state, job),
            Err(reply) => reply,
        },
        "cache_stats" => cache_stats(state),
        "shutdown" => Reply::Shutdown(
            Json::Obj(vec![
                ("ok".to_owned(), Json::Bool(true)),
                ("stopping".to_owned(), Json::Bool(true)),
            ])
            .render(),
        ),
        other => err("unknown_command", &format!("unknown command {other:?}")),
    }
}

fn job_id(doc: &Json) -> Result<u64, Reply> {
    let Some(field) = doc.get("job") else {
        return Err(err("bad_request", "command needs a \"job\" id"));
    };
    if let Some(id) = field.as_u64_str() {
        return Ok(id);
    }
    if let Some(x) = field.as_f64() {
        if x >= 0.0 && x.fract() == 0.0 && x <= 9_007_199_254_740_992.0 {
            return Ok(x as u64);
        }
    }
    Err(err(
        "bad_request",
        "\"job\" must be a job id (integer or decimal string)",
    ))
}

fn submit(state: &Arc<ServerState>, request: Option<&Json>) -> Reply {
    let Some(request) = request else {
        return err("bad_request", "submit needs a \"request\" object");
    };
    let request = match RunRequest::parse(request) {
        Ok(request) => request,
        Err(e) => return err(e.code, &e.message),
    };
    let graph = match request.graph.build() {
        Ok(graph) => Arc::new(graph),
        Err(e) => return err(e.code, &e.message),
    };
    let key = cache_key(&request, graph.as_ref());
    let now = now_unix_ms();
    let (id, cached, job_state) = if state.store.lookup(&key).is_some() {
        let id = state.jobs.insert_done(key.clone(), request, graph, now);
        (id, true, "done")
    } else {
        let id = state.jobs.enqueue(key.clone(), request, graph, now);
        (id, false, "queued")
    };
    Reply::Single(
        Json::Obj(vec![
            ("ok".to_owned(), Json::Bool(true)),
            ("cached".to_owned(), Json::Bool(cached)),
            ("job".to_owned(), Json::u64_str(id)),
            ("key".to_owned(), Json::Str(key)),
            ("state".to_owned(), Json::Str(job_state.to_owned())),
        ])
        .render(),
    )
}

/// The status reply for one job snapshot (also the `watch` stream line).
#[must_use]
pub fn status_json(snap: &JobSnapshot) -> Json {
    let mut entries = vec![
        ("ok".to_owned(), Json::Bool(true)),
        ("cached".to_owned(), Json::Bool(snap.cached)),
        (
            "created_unix_ms".to_owned(),
            Json::u64_str(snap.created_unix_ms),
        ),
    ];
    if let JobState::Error(message) = &snap.state {
        entries.push(("error".to_owned(), Json::Str(message.clone())));
    }
    entries.extend([
        ("job".to_owned(), Json::u64_str(snap.id)),
        ("key".to_owned(), Json::Str(snap.key.clone())),
        ("progress".to_owned(), Json::Num(snap.progress as f64)),
        ("state".to_owned(), Json::Str(snap.state.name().to_owned())),
        ("total".to_owned(), Json::Num(snap.total as f64)),
    ]);
    Json::Obj(entries)
}

fn fetch(state: &Arc<ServerState>, job: u64) -> Reply {
    let Some(snap) = state.jobs.snapshot(job) else {
        return err("unknown_job", &format!("no job {job}"));
    };
    match snap.state {
        JobState::Done => {
            let Some(payload) = state.store.peek(&snap.key) else {
                return err("not_ready", "payload not yet published");
            };
            // The payload is spliced in verbatim — a cache hit's `result`
            // bytes are identical to the run that produced the entry.
            Reply::Single(format!(
                "{{\"ok\":true,\"cached\":{},\"job\":\"{}\",\"key\":\"{}\",\"result\":{}}}",
                snap.cached, snap.id, snap.key, payload
            ))
        }
        JobState::Error(message) => err("job_failed", &message),
        JobState::Queued | JobState::Running => err(
            "not_ready",
            &format!("job {} is {}", snap.id, snap.state.name()),
        ),
    }
}

fn cache_stats(state: &Arc<ServerState>) -> Reply {
    let stats = state.store.stats();
    Reply::Single(
        Json::Obj(vec![
            ("ok".to_owned(), Json::Bool(true)),
            (
                "engine_runs".to_owned(),
                Json::u64_str(state.engine_runs.load(std::sync::atomic::Ordering::Relaxed)),
            ),
            (
                "started_unix_ms".to_owned(),
                Json::u64_str(state.started_unix_ms),
            ),
            (
                "stats".to_owned(),
                Json::Obj(vec![
                    ("entries".to_owned(), Json::Num(stats.entries as f64)),
                    ("hits".to_owned(), Json::Num(stats.hits as f64)),
                    ("insertions".to_owned(), Json::Num(stats.insertions as f64)),
                    ("misses".to_owned(), Json::Num(stats.misses as f64)),
                ]),
            ),
        ])
        .render(),
    )
}
