//! Request parsing, validation, canonicalisation, and cache keys.
//!
//! A run request arrives as arbitrary-order JSON; this module parses it
//! into a typed [`RunRequest`], validates every knob *before* anything can
//! panic downstream, and re-renders it in one fixed canonical form — which
//! is why permuted-but-equivalent request texts address the same cache
//! entry.
//!
//! The cache key is `fnv1a64(canonical request JSON)`, where the canonical
//! form embeds a **digest of the built graph** rather than the graph spec:
//! a DIMACS upload and a generator spec that produce the same adjacency
//! structure hit the same entry. See [`cache_key`].

use mis_beeping::json::Json;
use mis_beeping::{FaultPlan, PropagationKernel, RngMode, SimConfig};
use mis_core::Algorithm;
use mis_experiments::Backend;
use mis_graph::{generators, io, Graph, GraphView};
use rand::{rngs::SmallRng, SeedableRng};

/// Largest accepted node count for generated and uploaded graphs.
pub const MAX_NODES: usize = 2_000_000;

/// Largest accepted seed range (`runs`).
pub const MAX_RUNS: usize = 10_000;

/// Largest accepted intra-run shard count.
pub const MAX_SHARDS: usize = 1_024;

/// Cache-key protocol version: bumped whenever the canonical form or the
/// payload schema changes, so stale persisted entries can never be served
/// for a new schema.
pub const PROTO_VERSION: f64 = 1.0;

/// A rejected request: a stable machine-readable `code` plus a human
/// message. The wire shape is produced by
/// [`error_reply`](crate::protocol::error_reply).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// Stable error code (`bad_request`, `unknown_algorithm`,
    /// `unknown_generator`, `empty_seed_range`, `bad_graph`,
    /// `unsupported_config`).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl RequestError {
    fn new(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }

    fn bad(message: impl Into<String>) -> Self {
        Self::new("bad_request", message)
    }
}

impl core::fmt::Display for RequestError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for RequestError {}

/// The graph a request runs on: a named generator or a DIMACS upload.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSpec {
    /// Erdős–Rényi `G(n, p)` seeded by `graph_seed`.
    Gnp {
        /// Node count.
        n: usize,
        /// Edge probability.
        p: f64,
        /// Generator seed (independent of the run seed range).
        graph_seed: u64,
    },
    /// `rows × cols` grid.
    Grid2d {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// `rows × cols` torus.
    Torus2d {
        /// Torus rows.
        rows: usize,
        /// Torus columns.
        cols: usize,
    },
    /// Cycle on `n` nodes.
    Cycle {
        /// Node count.
        n: usize,
    },
    /// Path on `n` nodes.
    Path {
        /// Node count.
        n: usize,
    },
    /// Complete graph on `n` nodes.
    Complete {
        /// Node count.
        n: usize,
    },
    /// Star with `n - 1` leaves.
    Star {
        /// Node count.
        n: usize,
    },
    /// Uniform random labelled tree seeded by `graph_seed`.
    RandomTree {
        /// Node count.
        n: usize,
        /// Generator seed.
        graph_seed: u64,
    },
    /// Inline DIMACS text (the `p edge` format of `mis_graph::io`).
    Dimacs {
        /// The DIMACS document.
        text: String,
    },
}

impl GraphSpec {
    fn parse(j: &Json) -> Result<Self, RequestError> {
        let entries = as_obj(j, "graph")?;
        if let Some(text) = j.get("dimacs") {
            check_keys(entries, &["dimacs"], "graph")?;
            let text = text
                .as_str()
                .ok_or_else(|| RequestError::bad("graph.dimacs must be a string"))?;
            return Ok(GraphSpec::Dimacs {
                text: text.to_owned(),
            });
        }
        let name = j
            .get("generator")
            .and_then(Json::as_str)
            .ok_or_else(|| RequestError::bad("graph needs a \"generator\" or \"dimacs\" field"))?;
        let spec = match name {
            "gnp" => {
                check_keys(entries, &["generator", "n", "p", "graph_seed"], "graph")?;
                GraphSpec::Gnp {
                    n: req_count(j, "n")?,
                    p: req_probability(j, "p")?,
                    graph_seed: opt_u64(j, "graph_seed")?.unwrap_or(0),
                }
            }
            "grid2d" | "torus2d" => {
                check_keys(entries, &["generator", "rows", "cols"], "graph")?;
                let rows = req_count(j, "rows")?;
                let cols = req_count(j, "cols")?;
                if name == "grid2d" {
                    GraphSpec::Grid2d { rows, cols }
                } else {
                    GraphSpec::Torus2d { rows, cols }
                }
            }
            "cycle" | "path" | "complete" | "star" => {
                check_keys(entries, &["generator", "n"], "graph")?;
                let n = req_count(j, "n")?;
                match name {
                    "cycle" => GraphSpec::Cycle { n },
                    "path" => GraphSpec::Path { n },
                    "complete" => GraphSpec::Complete { n },
                    _ => GraphSpec::Star { n },
                }
            }
            "random_tree" => {
                check_keys(entries, &["generator", "n", "graph_seed"], "graph")?;
                GraphSpec::RandomTree {
                    n: req_count(j, "n")?,
                    graph_seed: opt_u64(j, "graph_seed")?.unwrap_or(0),
                }
            }
            other => {
                return Err(RequestError::new(
                    "unknown_generator",
                    format!("unknown generator {other:?}"),
                ))
            }
        };
        Ok(spec)
    }

    /// Builds the concrete CSR graph, enforcing the [`MAX_NODES`] cap.
    ///
    /// # Errors
    ///
    /// `bad_graph` for node counts over the cap or malformed DIMACS text
    /// (including self-loop edges, which the parser rejects).
    pub fn build(&self) -> Result<Graph, RequestError> {
        let cap = |n: usize| {
            if n > MAX_NODES {
                Err(RequestError::new(
                    "bad_graph",
                    format!("{n} nodes exceeds the {MAX_NODES}-node cap"),
                ))
            } else {
                Ok(n)
            }
        };
        Ok(match self {
            GraphSpec::Gnp { n, p, graph_seed } => {
                generators::gnp(cap(*n)?, *p, &mut SmallRng::seed_from_u64(*graph_seed))
            }
            GraphSpec::Grid2d { rows, cols } => {
                cap(rows.saturating_mul(*cols))?;
                generators::grid2d(*rows, *cols)
            }
            GraphSpec::Torus2d { rows, cols } => {
                cap(rows.saturating_mul(*cols))?;
                generators::torus2d(*rows, *cols)
            }
            GraphSpec::Cycle { n } => generators::cycle(cap(*n)?),
            GraphSpec::Path { n } => generators::path(cap(*n)?),
            GraphSpec::Complete { n } => generators::complete(cap(*n)?),
            GraphSpec::Star { n } => generators::star(cap(*n)?),
            GraphSpec::RandomTree { n, graph_seed } => {
                generators::random_tree(cap(*n)?, &mut SmallRng::seed_from_u64(*graph_seed))
            }
            GraphSpec::Dimacs { text } => {
                let g = io::parse_dimacs(text)
                    .map_err(|e| RequestError::new("bad_graph", e.to_string()))?;
                cap(g.node_count())?;
                g
            }
        })
    }
}

/// The algorithm family a request runs — all seven families of the
/// unified [`Engine`](mis_core::Engine) path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlgorithmSpec {
    /// The paper's feedback-adaptive beeping algorithm.
    Feedback,
    /// Afek et al. DISC'11 uninformed sweep.
    Sweep,
    /// Afek et al. Science'11 informed ramp.
    Science {
        /// Steps-per-phase multiplier.
        phase_factor: u32,
    },
    /// Constant-probability beeping schedule.
    Constant {
        /// The fixed beeping probability.
        p: f64,
    },
    /// Luby's algorithm, random-priority variant (message baseline).
    LubyPriority,
    /// Luby's algorithm, marking variant (message baseline).
    LubyMarking,
    /// Métivier et al. exchange-based MIS (message baseline).
    Metivier,
    /// Greedy local id-priority MIS (message baseline).
    GreedyLocal,
}

impl AlgorithmSpec {
    fn parse(j: &Json) -> Result<Self, RequestError> {
        let entries = as_obj(j, "algorithm")?;
        let family = j
            .get("family")
            .and_then(Json::as_str)
            .ok_or_else(|| RequestError::bad("algorithm needs a \"family\" string"))?;
        let spec = match family {
            "feedback" => AlgorithmSpec::Feedback,
            "sweep" => AlgorithmSpec::Sweep,
            "science" => AlgorithmSpec::Science {
                phase_factor: match opt_u64(j, "phase_factor")? {
                    None => 2,
                    Some(f @ 1..=64) => f as u32,
                    Some(other) => {
                        return Err(RequestError::bad(format!(
                            "phase_factor must be in 1..=64, got {other}"
                        )))
                    }
                },
            },
            "constant" => {
                let p = req_probability(j, "p")?;
                if p <= 0.0 {
                    return Err(RequestError::bad("constant family needs p > 0"));
                }
                AlgorithmSpec::Constant { p }
            }
            "luby_priority" => AlgorithmSpec::LubyPriority,
            "luby_marking" => AlgorithmSpec::LubyMarking,
            "metivier" => AlgorithmSpec::Metivier,
            "greedy_local" => AlgorithmSpec::GreedyLocal,
            other => {
                return Err(RequestError::new(
                    "unknown_algorithm",
                    format!("unknown algorithm family {other:?}"),
                ))
            }
        };
        let allowed: &[&str] = match spec {
            AlgorithmSpec::Science { .. } => &["family", "phase_factor"],
            AlgorithmSpec::Constant { .. } => &["family", "p"],
            _ => &["family"],
        };
        check_keys(entries, allowed, "algorithm")?;
        Ok(spec)
    }

    /// Short family name (the wire `family` value).
    #[must_use]
    pub fn family(&self) -> &'static str {
        match self {
            AlgorithmSpec::Feedback => "feedback",
            AlgorithmSpec::Sweep => "sweep",
            AlgorithmSpec::Science { .. } => "science",
            AlgorithmSpec::Constant { .. } => "constant",
            AlgorithmSpec::LubyPriority => "luby_priority",
            AlgorithmSpec::LubyMarking => "luby_marking",
            AlgorithmSpec::Metivier => "metivier",
            AlgorithmSpec::GreedyLocal => "greedy_local",
        }
    }

    /// Whether this family runs on the message-passing runtime (`true`)
    /// rather than the beeping simulator.
    #[must_use]
    pub fn is_message(&self) -> bool {
        matches!(
            self,
            AlgorithmSpec::LubyPriority
                | AlgorithmSpec::LubyMarking
                | AlgorithmSpec::Metivier
                | AlgorithmSpec::GreedyLocal
        )
    }

    /// The beeping [`Algorithm`] this family maps to, `None` for message
    /// families.
    #[must_use]
    pub fn to_algorithm(&self) -> Option<Algorithm> {
        match *self {
            AlgorithmSpec::Feedback => Some(Algorithm::feedback()),
            AlgorithmSpec::Sweep => Some(Algorithm::sweep()),
            AlgorithmSpec::Science { phase_factor } => Some(Algorithm::Science { phase_factor }),
            AlgorithmSpec::Constant { p } => Some(Algorithm::constant(p)),
            _ => None,
        }
    }

    /// Canonical JSON (fixed key order, parameters materialised).
    #[must_use]
    pub fn canonical_json(&self) -> Json {
        let mut entries = vec![("family".to_owned(), Json::Str(self.family().to_owned()))];
        match *self {
            AlgorithmSpec::Science { phase_factor } => {
                entries.push((
                    "phase_factor".to_owned(),
                    Json::Num(f64::from(phase_factor)),
                ));
            }
            AlgorithmSpec::Constant { p } => entries.push(("p".to_owned(), Json::Num(p))),
            _ => {}
        }
        Json::Obj(entries)
    }
}

/// A fully validated run request: the typed form every permutation of the
/// same request JSON parses to.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    /// Graph to run on.
    pub graph: GraphSpec,
    /// Algorithm family.
    pub algorithm: AlgorithmSpec,
    /// Simulator configuration assembled from the `config` knobs.
    pub config: SimConfig,
    /// Adjacency backend serving the runs.
    pub backend: Backend,
    /// Master seed of the first run; run `i` uses the blessed per-run
    /// derivation of `RunPlan`.
    pub seed: u64,
    /// Number of runs (the seed range).
    pub runs: usize,
}

impl RunRequest {
    /// Parses and validates a request object.
    ///
    /// # Errors
    ///
    /// Returns a typed [`RequestError`] for malformed shapes
    /// (`bad_request`), unknown families/generators, a zero seed range
    /// (`empty_seed_range`), and knob combinations the engines do not
    /// support (`unsupported_config`).
    pub fn parse(j: &Json) -> Result<Self, RequestError> {
        let entries = as_obj(j, "request")?;
        check_keys(
            entries,
            &["graph", "algorithm", "config", "backend", "seed", "runs"],
            "request",
        )?;
        let graph = GraphSpec::parse(
            j.get("graph")
                .ok_or_else(|| RequestError::bad("request needs a \"graph\" object"))?,
        )?;
        let algorithm = AlgorithmSpec::parse(
            j.get("algorithm")
                .ok_or_else(|| RequestError::bad("request needs an \"algorithm\" object"))?,
        )?;
        let config = parse_config(j.get("config"))?;
        let backend = match j.get("backend") {
            None => Backend::Csr,
            Some(b) => {
                let name = b
                    .as_str()
                    .ok_or_else(|| RequestError::bad("backend must be a string"))?;
                Backend::parse(name).ok_or_else(|| {
                    RequestError::bad(format!(
                        "unknown backend {name:?} (expected csr, compressed, or disk)"
                    ))
                })?
            }
        };
        let seed = opt_u64(j, "seed")?.unwrap_or(0);
        let runs = match j.get("runs") {
            None => return Err(RequestError::bad("request needs a \"runs\" count")),
            Some(r) => json_u64(r, "runs")? as usize,
        };
        if runs == 0 {
            return Err(RequestError::new(
                "empty_seed_range",
                "runs must be at least 1",
            ));
        }
        if runs > MAX_RUNS {
            return Err(RequestError::bad(format!(
                "{runs} runs exceeds the {MAX_RUNS}-run cap"
            )));
        }
        if algorithm.is_message() && config.faults.message_loss > 0.0 {
            return Err(RequestError::new(
                "unsupported_config",
                "message_loss applies to beeping families only",
            ));
        }
        Ok(Self {
            graph,
            algorithm,
            config,
            backend,
            seed,
            runs,
        })
    }

    /// The canonical JSON of this request given the digest of its built
    /// graph: fixed key order, every knob materialised (defaults
    /// included). Equal canonical renders ⇒ equal cache keys.
    #[must_use]
    pub fn canonical_json(&self, graph_digest: u64) -> Json {
        Json::Obj(vec![
            ("algorithm".to_owned(), self.algorithm.canonical_json()),
            (
                "backend".to_owned(),
                Json::Str(self.backend.name().to_owned()),
            ),
            ("config".to_owned(), self.config.canonical_json()),
            ("graph_digest".to_owned(), Json::u64_str(graph_digest)),
            ("proto".to_owned(), Json::Num(PROTO_VERSION)),
            ("runs".to_owned(), Json::Num(self.runs as f64)),
            ("seed".to_owned(), Json::u64_str(self.seed)),
        ])
    }
}

fn parse_config(j: Option<&Json>) -> Result<SimConfig, RequestError> {
    let mut config = SimConfig::default();
    let Some(j) = j else { return Ok(config) };
    let entries = as_obj(j, "config")?;
    check_keys(
        entries,
        &[
            "max_rounds",
            "kernel",
            "rng",
            "shards",
            "mis_keeps_beeping",
            "message_loss",
        ],
        "config",
    )?;
    if let Some(max_rounds) = opt_u64(j, "max_rounds")? {
        if max_rounds == 0 || max_rounds > u64::from(u32::MAX) {
            return Err(RequestError::bad("max_rounds must be in 1..=2^32-1"));
        }
        config.max_rounds = max_rounds as u32;
    }
    if let Some(kernel) = j.get("kernel") {
        let name = kernel
            .as_str()
            .ok_or_else(|| RequestError::bad("kernel must be a string"))?;
        config.kernel = PropagationKernel::parse(name)
            .ok_or_else(|| RequestError::bad(format!("unknown kernel {name:?}")))?;
    }
    if let Some(rng) = j.get("rng") {
        let name = rng
            .as_str()
            .ok_or_else(|| RequestError::bad("rng must be a string"))?;
        config.rng = RngMode::parse(name)
            .ok_or_else(|| RequestError::bad(format!("unknown rng mode {name:?}")))?;
    }
    if let Some(shards) = opt_u64(j, "shards")? {
        if shards == 0 || shards > MAX_SHARDS as u64 {
            return Err(RequestError::bad(format!(
                "shards must be in 1..={MAX_SHARDS}"
            )));
        }
        // with_shards(≠1) also forces counter-mode draws, the only
        // discipline under which sharding is legal.
        config = config.with_shards(shards as usize);
    }
    if let Some(keep) = j.get("mis_keeps_beeping") {
        config.mis_keeps_beeping = keep
            .as_bool()
            .ok_or_else(|| RequestError::bad("mis_keeps_beeping must be a boolean"))?;
    }
    if let Some(loss) = j.get("message_loss") {
        let loss = loss
            .as_f64()
            .ok_or_else(|| RequestError::bad("message_loss must be a number"))?;
        let faults = FaultPlan {
            message_loss: loss,
            wake_rounds: Vec::new(),
        };
        faults
            .validate()
            .map_err(|e| RequestError::bad(e.to_string()))?;
        config.faults = faults;
    }
    Ok(config)
}

// ---- JSON field helpers ---------------------------------------------------

fn as_obj<'a>(j: &'a Json, ctx: &str) -> Result<&'a [(String, Json)], RequestError> {
    match j {
        Json::Obj(entries) => Ok(entries),
        _ => Err(RequestError::bad(format!("{ctx} must be a JSON object"))),
    }
}

fn check_keys(entries: &[(String, Json)], allowed: &[&str], ctx: &str) -> Result<(), RequestError> {
    for (key, _) in entries {
        if !allowed.contains(&key.as_str()) {
            return Err(RequestError::bad(format!("unknown {ctx} field {key:?}")));
        }
    }
    Ok(())
}

/// A `u64` field written either as a decimal string (full 64-bit range)
/// or as a small non-negative integer (≤ 2⁵³, the IEEE-exact range).
fn json_u64(j: &Json, ctx: &str) -> Result<u64, RequestError> {
    if let Some(v) = j.as_u64_str() {
        return Ok(v);
    }
    if let Some(x) = j.as_f64() {
        if x >= 0.0 && x.fract() == 0.0 && x <= 9_007_199_254_740_992.0 {
            return Ok(x as u64);
        }
    }
    Err(RequestError::bad(format!(
        "{ctx} must be a non-negative integer or decimal string"
    )))
}

fn opt_u64(j: &Json, key: &str) -> Result<Option<u64>, RequestError> {
    j.get(key).map(|v| json_u64(v, key)).transpose()
}

fn req_count(j: &Json, key: &str) -> Result<usize, RequestError> {
    let v = j
        .get(key)
        .ok_or_else(|| RequestError::bad(format!("graph needs a {key:?} count")))?;
    Ok(json_u64(v, key)? as usize)
}

fn req_probability(j: &Json, key: &str) -> Result<f64, RequestError> {
    let p = j
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| RequestError::bad(format!("{key:?} must be a number")))?;
    if p.is_finite() && (0.0..=1.0).contains(&p) {
        Ok(p)
    } else {
        Err(RequestError::bad(format!("{key:?} must be in [0, 1]")))
    }
}

// ---- Content addressing ---------------------------------------------------

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET_BASIS;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a digest of a graph's adjacency structure: node count, then each
/// node's degree followed by its ascending neighbour list. The
/// degree-prefix makes the byte stream a prefix code, so distinct
/// adjacency structures cannot collide by concatenation.
#[must_use]
pub fn graph_digest<G: GraphView + ?Sized>(g: &G) -> u64 {
    let mut h = FNV_OFFSET_BASIS;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    };
    eat(g.node_count() as u64);
    for v in 0..g.node_count() as u32 {
        eat(g.degree(v) as u64);
        g.for_each_neighbor(v, |u| eat(u64::from(u)));
    }
    h
}

/// The content address of `request` run on `graph`: 16 lowercase hex
/// digits of `fnv1a64(canonical request JSON)`. Everything that can change
/// a payload byte is inside the canonical form; nothing else is.
#[must_use]
pub fn cache_key<G: GraphView + ?Sized>(request: &RunRequest, graph: &G) -> String {
    let canonical = request.canonical_json(graph_digest(graph)).render();
    format!("{:016x}", fnv1a64(canonical.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<RunRequest, RequestError> {
        RunRequest::parse(&Json::parse(text).unwrap())
    }

    const MINIMAL: &str = r#"{"graph": {"generator": "cycle", "n": 8},
        "algorithm": {"family": "feedback"}, "seed": "3", "runs": 4}"#;

    #[test]
    fn minimal_request_parses_with_defaults() {
        let r = parse(MINIMAL).unwrap();
        assert_eq!(r.graph, GraphSpec::Cycle { n: 8 });
        assert_eq!(r.algorithm, AlgorithmSpec::Feedback);
        assert_eq!(r.config, SimConfig::default());
        assert_eq!(r.backend, Backend::Csr);
        assert_eq!(r.seed, 3);
        assert_eq!(r.runs, 4);
    }

    #[test]
    fn permuted_request_text_yields_the_same_cache_key() {
        let a = parse(MINIMAL).unwrap();
        let b = parse(
            r#"{"runs": 4, "algorithm": {"family": "feedback"}, "seed": 3,
                "graph": {"n": 8, "generator": "cycle"}}"#,
        )
        .unwrap();
        let g = a.graph.build().unwrap();
        assert_eq!(cache_key(&a, &g), cache_key(&b, &g));
    }

    #[test]
    fn dimacs_upload_equals_the_generator_it_encodes() {
        let spec = parse(MINIMAL).unwrap();
        let g = spec.graph.build().unwrap();
        let dimacs_text = io::to_dimacs(&g);
        let uploaded = GraphSpec::Dimacs { text: dimacs_text }.build().unwrap();
        assert_eq!(graph_digest(&g), graph_digest(&uploaded));
    }

    #[test]
    fn every_knob_lands_in_the_key() {
        let base = parse(MINIMAL).unwrap();
        let g = base.graph.build().unwrap();
        let base_key = cache_key(&base, &g);
        let variants = [
            r#"{"graph": {"generator": "cycle", "n": 8},
                "algorithm": {"family": "sweep"}, "seed": "3", "runs": 4}"#,
            r#"{"graph": {"generator": "cycle", "n": 8},
                "algorithm": {"family": "feedback"}, "seed": "4", "runs": 4}"#,
            r#"{"graph": {"generator": "cycle", "n": 8},
                "algorithm": {"family": "feedback"}, "seed": "3", "runs": 5}"#,
            r#"{"graph": {"generator": "cycle", "n": 8},
                "algorithm": {"family": "feedback"}, "seed": "3", "runs": 4,
                "backend": "compressed"}"#,
            r#"{"graph": {"generator": "cycle", "n": 8},
                "algorithm": {"family": "feedback"}, "seed": "3", "runs": 4,
                "config": {"shards": 2}}"#,
            r#"{"graph": {"generator": "cycle", "n": 8},
                "algorithm": {"family": "feedback"}, "seed": "3", "runs": 4,
                "config": {"max_rounds": 99}}"#,
        ];
        let mut keys = vec![base_key];
        for text in variants {
            keys.push(cache_key(&parse(text).unwrap(), &g));
        }
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), variants.len() + 1, "all keys distinct");
    }

    #[test]
    fn typed_rejections() {
        let cases = [
            (r#"{"runs": 1}"#, "bad_request"),
            (
                r#"{"graph": {"generator": "moebius", "n": 4},
                    "algorithm": {"family": "feedback"}, "runs": 1}"#,
                "unknown_generator",
            ),
            (
                r#"{"graph": {"generator": "cycle", "n": 4},
                    "algorithm": {"family": "quantum"}, "runs": 1}"#,
                "unknown_algorithm",
            ),
            (
                r#"{"graph": {"generator": "cycle", "n": 4},
                    "algorithm": {"family": "feedback"}, "runs": 0}"#,
                "empty_seed_range",
            ),
            (
                r#"{"graph": {"generator": "cycle", "n": 4},
                    "algorithm": {"family": "luby_priority"}, "runs": 1,
                    "config": {"message_loss": 0.5}}"#,
                "unsupported_config",
            ),
            (
                r#"{"graph": {"generator": "cycle", "n": 4},
                    "algorithm": {"family": "feedback"}, "runs": 1,
                    "config": {"max_rounds": 0}}"#,
                "bad_request",
            ),
            (
                r#"{"graph": {"generator": "cycle", "n": 4},
                    "algorithm": {"family": "feedback"}, "runs": 1,
                    "frobnicate": true}"#,
                "bad_request",
            ),
        ];
        for (text, code) in cases {
            assert_eq!(parse(text).unwrap_err().code, code, "{text}");
        }
    }

    #[test]
    fn self_loop_dimacs_is_a_bad_graph() {
        let err = GraphSpec::Dimacs {
            text: "p edge 3 1\ne 2 2\n".to_owned(),
        }
        .build()
        .unwrap_err();
        assert_eq!(err.code, "bad_graph");
        assert!(err.message.contains("self-loop") || err.message.contains("loop"));
    }

    #[test]
    fn all_seven_families_parse_and_classify() {
        let beeping = ["feedback", "sweep", "science", "constant"];
        let message = ["luby_priority", "luby_marking", "metivier", "greedy_local"];
        for family in beeping {
            let extra = if family == "constant" {
                r#", "p": 0.5"#
            } else {
                ""
            };
            let text = format!(
                r#"{{"graph": {{"generator": "cycle", "n": 4}},
                    "algorithm": {{"family": "{family}"{extra}}}, "runs": 1}}"#
            );
            let r = parse(&text).unwrap();
            assert!(!r.algorithm.is_message(), "{family}");
            assert!(r.algorithm.to_algorithm().is_some(), "{family}");
        }
        for family in message {
            let text = format!(
                r#"{{"graph": {{"generator": "cycle", "n": 4}},
                    "algorithm": {{"family": "{family}"}}, "runs": 1}}"#
            );
            let r = parse(&text).unwrap();
            assert!(r.algorithm.is_message(), "{family}");
            assert!(r.algorithm.to_algorithm().is_none(), "{family}");
        }
    }

    #[test]
    fn seeds_accept_strings_and_small_integers() {
        let big = format!(
            r#"{{"graph": {{"generator": "cycle", "n": 4}},
                "algorithm": {{"family": "feedback"}},
                "seed": "{}", "runs": 1}}"#,
            u64::MAX
        );
        assert_eq!(parse(&big).unwrap().seed, u64::MAX);
        let small = r#"{"graph": {"generator": "cycle", "n": 4},
            "algorithm": {"family": "feedback"}, "seed": 12, "runs": 1}"#;
        assert_eq!(parse(small).unwrap().seed, 12);
    }

    #[test]
    fn graph_digest_separates_structures() {
        let c8 = generators::cycle(8);
        let p8 = generators::path(8);
        let c9 = generators::cycle(9);
        assert_ne!(graph_digest(&c8), graph_digest(&p8));
        assert_ne!(graph_digest(&c8), graph_digest(&c9));
        assert_eq!(graph_digest(&c8), graph_digest(&generators::cycle(8)));
    }
}
