//! The blocking client: one socket, one JSON line per call.
//!
//! [`ServeClient`] is what the test suites, the CI smoke job, and the
//! `mis-serve client` subcommand use. It deliberately exposes a
//! [`raw_call`](ServeClient::raw_call) escape hatch sending arbitrary
//! bytes — the protocol suite uses it to deliver malformed frames — and a
//! raw [`fetch_line`](ServeClient::fetch_line) so payload bytes can be
//! compared without a parse/re-render step in between.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use mis_beeping::json::Json;

/// Maximum status polls in [`wait`](ServeClient::wait) before giving up
/// (at 5 ms per poll ≈ 100 s of queue + run time).
const MAX_WAIT_POLLS: u32 = 20_000;

/// A connected protocol client.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServeClient {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// [`connect`](Self::connect) retrying every 50 ms, for racing a
    /// daemon that is still binding (the CI smoke starts both at once).
    ///
    /// # Errors
    ///
    /// Returns the last connection failure after `attempts` tries.
    pub fn connect_retry(addr: impl ToSocketAddrs + Copy, attempts: u32) -> std::io::Result<Self> {
        let mut last = None;
        for _ in 0..attempts.max(1) {
            match Self::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => last = Some(e),
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        Err(last.expect("at least one attempt"))
    }

    /// Sends one raw line (no trailing newline) and reads one reply line.
    /// The line is sent verbatim — including malformed JSON, which is the
    /// point for protocol tests.
    ///
    /// # Errors
    ///
    /// Propagates transport failures; an empty reply (server closed the
    /// connection) is `UnexpectedEof`.
    pub fn raw_call(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_reply_line()
    }

    fn read_reply_line(&mut self) -> std::io::Result<String> {
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(reply)
    }

    /// Sends a command document and parses the reply.
    ///
    /// # Errors
    ///
    /// Transport failures, plus `InvalidData` if the reply is not JSON.
    pub fn call(&mut self, doc: &Json) -> std::io::Result<Json> {
        let reply = self.raw_call(&doc.render())?;
        Json::parse(&reply).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad reply: {e}"))
        })
    }

    fn cmd0(name: &str) -> Json {
        Json::Obj(vec![("cmd".to_owned(), Json::Str(name.to_owned()))])
    }

    fn cmd_job(name: &str, job: &str) -> Json {
        Json::Obj(vec![
            ("cmd".to_owned(), Json::Str(name.to_owned())),
            ("job".to_owned(), Json::Str(job.to_owned())),
        ])
    }

    /// `ping` — true iff the daemon answered `pong`.
    ///
    /// # Errors
    ///
    /// Propagates [`call`](Self::call) failures.
    pub fn ping(&mut self) -> std::io::Result<bool> {
        Ok(self.call(&Self::cmd0("ping"))?.get("pong") == Some(&Json::Bool(true)))
    }

    /// `submit` — returns the ack (or typed error reply).
    ///
    /// # Errors
    ///
    /// Propagates [`call`](Self::call) failures.
    pub fn submit(&mut self, request: &Json) -> std::io::Result<Json> {
        self.call(&Json::Obj(vec![
            ("cmd".to_owned(), Json::Str("submit".to_owned())),
            ("request".to_owned(), request.clone()),
        ]))
    }

    /// `status` for a job id (the `job` string from a submit ack).
    ///
    /// # Errors
    ///
    /// Propagates [`call`](Self::call) failures.
    pub fn status(&mut self, job: &str) -> std::io::Result<Json> {
        self.call(&Self::cmd_job("status", job))
    }

    /// `fetch` as a raw reply line — byte-comparable across calls.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn fetch_line(&mut self, job: &str) -> std::io::Result<String> {
        self.raw_call(&Self::cmd_job("fetch", job).render())
    }

    /// `fetch` as a parsed reply.
    ///
    /// # Errors
    ///
    /// Propagates [`call`](Self::call) failures.
    pub fn fetch(&mut self, job: &str) -> std::io::Result<Json> {
        self.call(&Self::cmd_job("fetch", job))
    }

    /// `cache_stats`.
    ///
    /// # Errors
    ///
    /// Propagates [`call`](Self::call) failures.
    pub fn cache_stats(&mut self) -> std::io::Result<Json> {
        self.call(&Self::cmd0("cache_stats"))
    }

    /// Polls `status` every 5 ms until the job is `done` or `error`,
    /// returning the final status reply.
    ///
    /// # Errors
    ///
    /// Transport failures, or `TimedOut` after `MAX_WAIT_POLLS` polls.
    pub fn wait(&mut self, job: &str) -> std::io::Result<Json> {
        for _ in 0..MAX_WAIT_POLLS {
            let status = self.status(job)?;
            match status.get("state").and_then(Json::as_str) {
                Some("done" | "error") => return Ok(status),
                _ if status.get("ok") == Some(&Json::Bool(false)) => return Ok(status),
                _ => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        Err(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            format!("job {job} did not finish"),
        ))
    }

    /// `submit` → [`wait`](Self::wait) → `fetch`: the full round-trip.
    /// Submit rejections and job failures come back as the daemon's
    /// `{"ok": false, ...}` reply rather than an `Err`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures and wait timeouts.
    pub fn run_to_completion(&mut self, request: &Json) -> std::io::Result<Json> {
        let ack = self.submit(request)?;
        if ack.get("ok") != Some(&Json::Bool(true)) {
            return Ok(ack);
        }
        let job = ack
            .get("job")
            .and_then(Json::as_str)
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "ack without a job id")
            })?
            .to_owned();
        self.wait(&job)?;
        self.fetch(&job)
    }

    /// `shutdown` — the daemon stops after replying.
    ///
    /// # Errors
    ///
    /// Propagates [`call`](Self::call) failures.
    pub fn shutdown(&mut self) -> std::io::Result<Json> {
        self.call(&Self::cmd0("shutdown"))
    }
}
