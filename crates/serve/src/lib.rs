//! Simulation-as-a-service: the `mis-serve` daemon and its client.
//!
//! The paper's claims are statistical, so real use of this reproduction is
//! thousands of queued runs. This crate turns the deterministic engine
//! stack into a std-only TCP daemon speaking newline-delimited JSON (one
//! request object per line, one response object per line, over the
//! hand-rolled [`mis_beeping::json`] tree — no serde, no registry deps).
//!
//! Determinism is the whole trick: every result is a pure function of
//! (graph, config, seed range), so the daemon backs itself with a
//! **content-addressed cache** — requests are canonicalised
//! ([`request::RunRequest::canonical_json`]), digested with FNV-1a
//! ([`request::cache_key`]), and a repeat request is served byte-identically
//! from the store with zero engine work.
//!
//! The crate is layered as config / handlers / store (the pod2-client
//! server layering):
//!
//! | Module | Layer |
//! |--------|-------|
//! | [`config`] | [`ServeConfig`] — address, cache dir, worker counts, frame cap |
//! | [`protocol`] | framing (bounded line reader) and typed error replies |
//! | [`request`] | request parsing, validation, canonicalisation, cache keys |
//! | [`store`] | [`ResultStore`] — content-addressed payloads + hit/miss stats |
//! | [`jobs`] | job table, FIFO queue, and the engine-executing workers |
//! | [`handlers`] | one function per protocol command |
//! | [`server`] | [`Server`] — listener, connection threads, lifecycle |
//! | [`client`] | [`ServeClient`] — the blocking client used by tests and CI |
//!
//! # Examples
//!
//! ```
//! use mis_beeping::json::Json;
//! use mis_serve::{ServeClient, ServeConfig, Server};
//!
//! let handle = Server::spawn(ServeConfig::default().with_addr("127.0.0.1:0")).unwrap();
//! let mut client = ServeClient::connect(handle.addr()).unwrap();
//! let request = Json::parse(
//!     r#"{"graph": {"generator": "cycle", "n": 16},
//!         "algorithm": {"family": "feedback"},
//!         "seed": "7", "runs": 2}"#,
//! )
//! .unwrap();
//! let reply = client.run_to_completion(&request).unwrap();
//! assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
//! client.shutdown().unwrap();
//! handle.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod handlers;
pub mod jobs;
pub mod protocol;
pub mod request;
pub mod server;
pub mod store;

pub use client::ServeClient;
pub use config::ServeConfig;
pub use protocol::{error_reply, Frame};
pub use request::{cache_key, graph_digest, AlgorithmSpec, GraphSpec, RequestError, RunRequest};
pub use server::{Server, ServerHandle};
pub use store::{CacheStats, ResultStore};
