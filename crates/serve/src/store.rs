//! The content-addressed result store.
//!
//! Keys are the 16-hex-digit request digests of
//! [`cache_key`](crate::request::cache_key); values are fully rendered
//! payload JSON strings. Because every payload is a pure function of its
//! key's preimage, entries never expire and never invalidate — the store
//! is append-only, and a hit is *byte-identical* to the miss that produced
//! the entry.
//!
//! With a cache directory configured, each entry also lives as
//! `<key>.json` on disk (written to a temp name and renamed, so a crash
//! can leave stale temp files but never a torn entry) and the whole
//! directory is reloaded on startup — a restarted daemon serves its old
//! results without re-running anything.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Counters the daemon exposes through the `cache_stats` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Submissions answered from the store.
    pub hits: u64,
    /// Submissions that had to run the engine.
    pub misses: u64,
    /// Entries written (≤ misses: concurrent duplicates dedupe).
    pub insertions: u64,
    /// Entries currently held.
    pub entries: usize,
}

/// Thread-safe content-addressed payload store with optional directory
/// persistence.
#[derive(Debug)]
pub struct ResultStore {
    entries: Mutex<BTreeMap<String, Arc<String>>>,
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
}

impl ResultStore {
    /// An empty in-memory store.
    #[must_use]
    pub fn in_memory() -> Self {
        Self {
            entries: Mutex::new(BTreeMap::new()),
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    /// A store persisting entries under `dir`, pre-loaded with every
    /// `<16-hex>.json` entry already there. The directory is created if
    /// missing.
    ///
    /// # Errors
    ///
    /// Propagates directory creation/read failures; unreadable individual
    /// entries are skipped rather than fatal.
    pub fn with_dir(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut entries = BTreeMap::new();
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(key) = name.strip_suffix(".json") else {
                continue;
            };
            if key.len() != 16 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
                continue;
            }
            if let Ok(payload) = std::fs::read_to_string(&path) {
                entries.insert(key.to_owned(), Arc::new(payload));
            }
        }
        Ok(Self {
            entries: Mutex::new(entries),
            dir: Some(dir),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        })
    }

    /// Submission-time lookup: counts a hit or a miss.
    #[must_use]
    pub fn lookup(&self, key: &str) -> Option<Arc<String>> {
        let found = self.peek(key);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Stat-free lookup — used by workers re-checking a dequeued job, so
    /// in-flight duplicates dedupe without inflating the hit counter.
    #[must_use]
    pub fn peek(&self, key: &str) -> Option<Arc<String>> {
        self.entries
            .lock()
            .expect("result store poisoned")
            .get(key)
            .cloned()
    }

    /// Inserts (or re-reads) the payload for `key` and returns the stored
    /// copy. First writer wins: a concurrent duplicate insert returns the
    /// existing bytes, so every reader of one key sees one payload.
    pub fn insert(&self, key: &str, payload: String) -> Arc<String> {
        let stored = {
            let mut entries = self.entries.lock().expect("result store poisoned");
            if let Some(existing) = entries.get(key) {
                return Arc::clone(existing);
            }
            let stored = Arc::new(payload);
            entries.insert(key.to_owned(), Arc::clone(&stored));
            stored
        };
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if let Some(dir) = &self.dir {
            // Persistence is best effort: a full disk degrades the daemon
            // to in-memory caching, it does not fail the job.
            let _ = persist(dir, key, &stored);
        }
        stored
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("result store poisoned").len(),
        }
    }
}

fn persist(dir: &std::path::Path, key: &str, payload: &str) -> std::io::Result<()> {
    let tmp = dir.join(format!("{key}.tmp"));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(payload.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, dir.join(format!("{key}.json")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mis-serve-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lookup_counts_peek_does_not() {
        let store = ResultStore::in_memory();
        assert!(store.lookup("00000000000000aa").is_none());
        assert!(store.peek("00000000000000aa").is_none());
        store.insert("00000000000000aa", "{}".to_owned());
        assert!(store.lookup("00000000000000aa").is_some());
        assert!(store.peek("00000000000000aa").is_some());
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.entries), (1, 1, 1, 1));
    }

    #[test]
    fn first_writer_wins_on_duplicate_insert() {
        let store = ResultStore::in_memory();
        let first = store.insert("00000000000000bb", "first".to_owned());
        let second = store.insert("00000000000000bb", "second".to_owned());
        assert_eq!(*first, "first");
        assert_eq!(*second, "first");
        assert_eq!(store.stats().insertions, 1);
    }

    #[test]
    fn directory_round_trip_survives_restart() {
        let dir = temp_dir("roundtrip");
        {
            let store = ResultStore::with_dir(&dir).unwrap();
            store.insert("00000000000000cc", "{\"x\":1}".to_owned());
        }
        let reloaded = ResultStore::with_dir(&dir).unwrap();
        assert_eq!(
            reloaded
                .peek("00000000000000cc")
                .as_deref()
                .map(String::as_str),
            Some("{\"x\":1}")
        );
        // Non-entry files are ignored on load.
        std::fs::write(dir.join("README.txt"), "not an entry").unwrap();
        std::fs::write(dir.join("zz.json"), "short key").unwrap();
        let again = ResultStore::with_dir(&dir).unwrap();
        assert_eq!(again.stats().entries, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
