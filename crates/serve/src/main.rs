//! `mis-serve` — the simulation-as-a-service daemon and its CLI client.
//!
//! ```text
//! mis-serve [--addr A] [--cache-dir D] [--workers N] [--job-jobs N] [--max-frame-bytes N]
//! mis-serve client --addr A (--request JSON | --request-file F | --stats | --ping | --shutdown)
//! ```
//!
//! The daemon prints `listening on <addr>` once bound and serves until a
//! client sends `shutdown`. The client subcommand performs one action and
//! prints one JSON line, so shell pipelines (and the CI smoke job) can
//! drive the protocol without a JSON library on the client side.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use mis_beeping::json::Json;
use mis_serve::{ServeClient, ServeConfig, Server};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = if args.first().map(String::as_str) == Some("client") {
        client_main(&args[1..])
    } else {
        daemon_main(&args)
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("mis-serve: {e}");
            ExitCode::from(2)
        }
    }
}

fn daemon_main(args: &[String]) -> Result<ExitCode, String> {
    let mut config = ServeConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => config = config.with_addr(value("--addr")?),
            "--cache-dir" => config = config.with_cache_dir(value("--cache-dir")?),
            "--workers" => config = config.with_workers(parse_num(value("--workers")?)?),
            "--job-jobs" => config = config.with_job_jobs(parse_num(value("--job-jobs")?)?),
            "--max-frame-bytes" => {
                config = config.with_max_frame_bytes(parse_num(value("--max-frame-bytes")?)?);
            }
            other => return Err(format!("unknown flag {other:?} (see src/main.rs docs)")),
        }
    }
    let server = Server::bind(config).map_err(|e| format!("bind failed: {e}"))?;
    println!("listening on {}", server.local_addr());
    server.run().map_err(|e| format!("serve failed: {e}"))?;
    Ok(ExitCode::SUCCESS)
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("not a number: {s:?}"))
}

enum ClientAction {
    Request(String),
    Stats,
    Ping,
    Shutdown,
}

fn client_main(args: &[String]) -> Result<ExitCode, String> {
    let mut addr = mis_serve::config::DEFAULT_ADDR.to_owned();
    let mut action = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--request" => action = Some(ClientAction::Request(value("--request")?)),
            "--request-file" => {
                let path = value("--request-file")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path:?}: {e}"))?;
                action = Some(ClientAction::Request(text));
            }
            "--stats" => action = Some(ClientAction::Stats),
            "--ping" => action = Some(ClientAction::Ping),
            "--shutdown" => action = Some(ClientAction::Shutdown),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let action = action.ok_or_else(|| {
        "client needs --request, --request-file, --stats, --ping, or --shutdown".to_owned()
    })?;
    let mut client =
        ServeClient::connect_retry(addr.as_str(), 40).map_err(|e| format!("connect: {e}"))?;
    match action {
        ClientAction::Ping => {
            let ok = client.ping().map_err(|e| e.to_string())?;
            println!("{{\"ok\":{ok},\"pong\":{ok}}}");
            Ok(exit_ok(ok))
        }
        ClientAction::Stats => {
            let stats = client.cache_stats().map_err(|e| e.to_string())?;
            let ok = stats.get("ok") == Some(&Json::Bool(true));
            println!("{}", stats.render());
            Ok(exit_ok(ok))
        }
        ClientAction::Shutdown => {
            let reply = client.shutdown().map_err(|e| e.to_string())?;
            let ok = reply.get("ok") == Some(&Json::Bool(true));
            println!("{}", reply.render());
            Ok(exit_ok(ok))
        }
        ClientAction::Request(text) => {
            let request =
                Json::parse(&text).map_err(|e| format!("request is not valid JSON: {e}"))?;
            let ack = client.submit(&request).map_err(|e| e.to_string())?;
            if ack.get("ok") != Some(&Json::Bool(true)) {
                println!("{}", ack.render());
                return Ok(ExitCode::FAILURE);
            }
            let job = ack
                .get("job")
                .and_then(Json::as_str)
                .ok_or("ack without a job id")?
                .to_owned();
            client.wait(&job).map_err(|e| e.to_string())?;
            // Splice raw reply lines so payload bytes survive untouched —
            // the CI smoke compares the `result` bytes of two runs.
            let result = client.fetch_line(&job).map_err(|e| e.to_string())?;
            let stats = client.cache_stats().map_err(|e| e.to_string())?.render();
            println!(
                "{{\"submit\":{},\"result\":{result},\"stats\":{stats}}}",
                ack.render()
            );
            let ok = Json::parse(&result)
                .map(|r| r.get("ok") == Some(&Json::Bool(true)))
                .unwrap_or(false);
            Ok(exit_ok(ok))
        }
    }
}

fn exit_ok(ok: bool) -> ExitCode {
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
