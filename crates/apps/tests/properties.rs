//! Property-based tests for the MIS-based applications: every reduction
//! must produce a verified structure on arbitrary random graphs, with any
//! of the beeping algorithms underneath.

use mis_apps::{clustering, coloring, dominating, matching};
use mis_core::{verify, Algorithm};
use mis_graph::{generators, ops, Graph};
use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

fn random_graph(n: usize, p: f64, seed: u64) -> Graph {
    generators::gnp(n, p, &mut SmallRng::seed_from_u64(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// MIS on the line graph is a maximal matching of the original graph.
    #[test]
    fn matching_is_maximal_on_random_graphs(
        n in 1usize..50,
        p in 0.0f64..1.0,
        graph_seed in any::<u64>(),
        run_seed in any::<u64>(),
    ) {
        let g = random_graph(n, p, graph_seed);
        let m = matching::maximal_matching(&g, &Algorithm::feedback(), run_seed).unwrap();
        prop_assert!(matching::check_matching(&g, m.edges()).is_ok());
    }

    /// Matched edges, viewed as line-graph nodes, form an independent set.
    #[test]
    fn matching_edges_are_line_graph_independent(
        n in 2usize..40,
        p in 0.0f64..0.5,
        graph_seed in any::<u64>(),
    ) {
        let g = random_graph(n, p, graph_seed);
        let m = matching::maximal_matching(&g, &Algorithm::feedback(), 7).unwrap();
        let (lg, edge_of) = ops::line_graph(&g);
        let indices: Vec<u32> = m
            .edges()
            .iter()
            .map(|e| edge_of.iter().position(|x| x == e).unwrap() as u32)
            .collect();
        prop_assert!(verify::is_independent_set(&lg, &indices));
    }

    /// The product reduction always yields a proper colouring within Δ+1
    /// colours.
    #[test]
    fn product_coloring_is_proper(
        n in 1usize..30,
        p in 0.0f64..0.6,
        graph_seed in any::<u64>(),
        run_seed in any::<u64>(),
    ) {
        let g = random_graph(n, p, graph_seed);
        let c = coloring::product_coloring(&g, &Algorithm::feedback(), run_seed).unwrap();
        prop_assert!(coloring::check_coloring(&g, c.colors()).is_ok());
        prop_assert!(c.color_count() <= g.max_degree() as u32 + 1);
    }

    /// Iterated MIS colouring matches the product reduction's guarantees
    /// and each colour class is independent.
    #[test]
    fn iterated_coloring_is_proper(
        n in 1usize..40,
        p in 0.0f64..0.6,
        graph_seed in any::<u64>(),
    ) {
        let g = random_graph(n, p, graph_seed);
        let c = coloring::iterated_mis_coloring(&g, &Algorithm::feedback(), 3).unwrap();
        prop_assert!(coloring::check_coloring(&g, c.colors()).is_ok());
        prop_assert!(c.color_count() <= g.max_degree() as u32 + 1);
        for color in 0..c.color_count() {
            prop_assert!(verify::is_independent_set(&g, &c.class(color)));
        }
    }

    /// An elected dominating set dominates and is independent.
    #[test]
    fn dominating_set_dominates(
        n in 1usize..60,
        p in 0.0f64..1.0,
        graph_seed in any::<u64>(),
        run_seed in any::<u64>(),
    ) {
        let g = random_graph(n, p, graph_seed);
        let ds = dominating::dominating_set_via_mis(&g, &Algorithm::feedback(), run_seed)
            .unwrap();
        prop_assert!(dominating::is_dominating_set(&g, ds.nodes()));
        prop_assert!(verify::is_independent_set(&g, ds.nodes()));
    }

    /// On connected graphs the CDS backbone is connected, dominating, and
    /// at most three times the number of heads.
    #[test]
    fn cds_is_connected_dominating(
        n in 2usize..40,
        graph_seed in any::<u64>(),
        run_seed in any::<u64>(),
    ) {
        // Dense enough to be connected most of the time; skip otherwise.
        let g = random_graph(n, 0.3, graph_seed);
        prop_assume!(ops::is_connected(&g));
        let cds = dominating::connected_dominating_set(&g, &Algorithm::feedback(), run_seed)
            .unwrap();
        prop_assert!(dominating::is_connected_dominating_set(&g, &cds.nodes()));
        prop_assert!(cds.len() <= 3 * cds.heads().len());
    }

    /// Clustering is a partition: sizes sum to n, every affiliation is
    /// one hop, heads are independent.
    #[test]
    fn clustering_partitions_nodes(
        n in 1usize..60,
        p in 0.0f64..1.0,
        graph_seed in any::<u64>(),
        run_seed in any::<u64>(),
    ) {
        let g = random_graph(n, p, graph_seed);
        let c = clustering::cluster_via_mis(&g, &Algorithm::feedback(), run_seed).unwrap();
        prop_assert!(clustering::check_clustering(&g, &c).is_ok());
        let total: usize = c.sizes().iter().sum();
        prop_assert_eq!(total, n);
    }

    /// All reductions behave identically across repeated runs with the
    /// same seed (determinism).
    #[test]
    fn applications_are_deterministic(
        n in 1usize..30,
        graph_seed in any::<u64>(),
        run_seed in any::<u64>(),
    ) {
        let g = random_graph(n, 0.25, graph_seed);
        let m1 = matching::maximal_matching(&g, &Algorithm::feedback(), run_seed).unwrap();
        let m2 = matching::maximal_matching(&g, &Algorithm::feedback(), run_seed).unwrap();
        prop_assert_eq!(m1, m2);
        let c1 = clustering::cluster_via_mis(&g, &Algorithm::feedback(), run_seed).unwrap();
        let c2 = clustering::cluster_via_mis(&g, &Algorithm::feedback(), run_seed).unwrap();
        prop_assert_eq!(c1, c2);
    }

    /// The reductions also work when driven by the global sweep schedule
    /// (the DISC'11 baseline) instead of the feedback algorithm.
    #[test]
    fn applications_work_under_sweep_schedule(
        n in 1usize..30,
        graph_seed in any::<u64>(),
    ) {
        let g = random_graph(n, 0.3, graph_seed);
        let m = matching::maximal_matching(&g, &Algorithm::sweep(), 2).unwrap();
        prop_assert!(matching::is_maximal_matching(&g, m.edges()));
        let ds = dominating::dominating_set_via_mis(&g, &Algorithm::sweep(), 2).unwrap();
        prop_assert!(dominating::is_dominating_set(&g, ds.nodes()));
    }
}
