//! Clusterhead election for ad-hoc and sensor networks.
//!
//! The paper's conclusion names ad-hoc sensor networks as a natural
//! application domain. The standard one-hop clustering scheme elects an
//! MIS as the set of *clusterheads*: independence spaces the heads out
//! (no two heads interfere), and domination guarantees every remaining
//! node can affiliate with a head one hop away. This module runs the
//! beeping-model MIS election and performs the deterministic affiliation
//! step, exposing the cluster structure for inspection.

use core::fmt;

use mis_beeping::SimConfig;
use mis_core::{solve_mis_with_config, Algorithm, SolveError};
use mis_graph::{Graph, NodeId};

/// A one-hop clustering: MIS heads plus a head assignment for every node.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    heads: Vec<NodeId>,
    assignment: Vec<NodeId>,
    rounds: u32,
}

impl Clustering {
    /// The elected clusterheads, sorted ascending.
    #[must_use]
    pub fn heads(&self) -> &[NodeId] {
        &self.heads
    }

    /// Number of clusters.
    #[must_use]
    pub fn cluster_count(&self) -> usize {
        self.heads.len()
    }

    /// The head that `v` affiliated with (heads affiliate with themselves).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn head_of(&self, v: NodeId) -> NodeId {
        self.assignment[v as usize]
    }

    /// The full assignment vector, indexed by node id.
    #[must_use]
    pub fn assignment(&self) -> &[NodeId] {
        &self.assignment
    }

    /// The members of the cluster headed by `head` (including the head),
    /// sorted ascending; empty if `head` is not a clusterhead.
    #[must_use]
    pub fn members(&self, head: NodeId) -> Vec<NodeId> {
        (0..self.assignment.len() as NodeId)
            .filter(|&v| self.assignment[v as usize] == head)
            .collect()
    }

    /// Cluster sizes in head order (aligned with [`Clustering::heads`]).
    #[must_use]
    pub fn sizes(&self) -> Vec<usize> {
        self.heads.iter().map(|&h| self.members(h).len()).collect()
    }

    /// The size of the largest cluster, or 0 for the empty graph.
    #[must_use]
    pub fn max_cluster_size(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }

    /// Mean cluster size, or `None` for the empty graph.
    #[must_use]
    pub fn mean_cluster_size(&self) -> Option<f64> {
        if self.heads.is_empty() {
            return None;
        }
        Some(self.assignment.len() as f64 / self.heads.len() as f64)
    }

    /// Beeping rounds taken by the underlying MIS election.
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }
}

/// A violation of the one-hop clustering conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusteringViolation {
    /// A node affiliated with something that is not a head.
    NotAHead {
        /// The affiliated node.
        node: NodeId,
        /// Its claimed head.
        head: NodeId,
    },
    /// A node affiliated with a head it is not adjacent to.
    NotAdjacent {
        /// The affiliated node.
        node: NodeId,
        /// Its claimed head.
        head: NodeId,
    },
    /// Two heads are adjacent (interference).
    AdjacentHeads {
        /// One head of the offending pair.
        u: NodeId,
        /// The other head.
        v: NodeId,
    },
}

impl fmt::Display for ClusteringViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusteringViolation::NotAHead { node, head } => {
                write!(f, "node {node} affiliated with non-head {head}")
            }
            ClusteringViolation::NotAdjacent { node, head } => {
                write!(f, "node {node} is not adjacent to its head {head}")
            }
            ClusteringViolation::AdjacentHeads { u, v } => {
                write!(f, "heads {u} and {v} are adjacent")
            }
        }
    }
}

impl std::error::Error for ClusteringViolation {}

/// Elects clusterheads by MIS and affiliates every other node with its
/// lowest-id adjacent head.
///
/// # Errors
///
/// Propagates [`SolveError`] from the underlying MIS run.
///
/// # Examples
///
/// ```
/// use mis_apps::clustering::{check_clustering, cluster_via_mis};
/// use mis_core::Algorithm;
/// use mis_graph::generators;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// # fn main() -> Result<(), mis_core::SolveError> {
/// let mut rng = SmallRng::seed_from_u64(1);
/// let g = generators::random_geometric(60, 0.25, &mut rng);
/// let clustering = cluster_via_mis(&g, &Algorithm::feedback(), 11)?;
/// assert!(check_clustering(&g, &clustering).is_ok());
/// # Ok(())
/// # }
/// ```
pub fn cluster_via_mis(
    g: &Graph,
    algorithm: &Algorithm,
    seed: u64,
) -> Result<Clustering, SolveError> {
    cluster_via_mis_with_config(g, algorithm, seed, SimConfig::default())
}

/// Like [`cluster_via_mis`] with an explicit simulator configuration —
/// the entry point for fault-injection studies on clusterhead election.
///
/// # Errors
///
/// As [`cluster_via_mis`]; under faults the election can fail, in which
/// case no (possibly invalid) clustering is returned.
///
/// # Panics
///
/// Panics if the underlying (verified) MIS fails to dominate — impossible,
/// as verification rejects such runs first.
pub fn cluster_via_mis_with_config(
    g: &Graph,
    algorithm: &Algorithm,
    seed: u64,
    config: SimConfig,
) -> Result<Clustering, SolveError> {
    let result = solve_mis_with_config(g, algorithm, seed, config)?;
    Ok(Clustering::from_heads(
        g,
        result.mis().to_vec(),
        result.rounds(),
    ))
}

impl Clustering {
    /// Performs the deterministic one-hop affiliation step for a verified
    /// set of MIS heads. Shared by the one-shot constructor and
    /// [`AppEngine`](crate::AppEngine).
    ///
    /// # Panics
    ///
    /// Panics if `heads` fails to dominate `g` (impossible for a verified
    /// MIS).
    pub(crate) fn from_heads(g: &Graph, heads: Vec<NodeId>, rounds: u32) -> Self {
        let n = g.node_count();
        let mut is_head = vec![false; n];
        for &h in &heads {
            is_head[h as usize] = true;
        }
        let mut assignment = vec![0 as NodeId; n];
        for v in g.nodes() {
            assignment[v as usize] = if is_head[v as usize] {
                v
            } else {
                *g.neighbors(v)
                    .iter()
                    .filter(|&&u| is_head[u as usize])
                    .min()
                    .expect("an MIS dominates every node")
            };
        }
        Clustering {
            heads,
            assignment,
            rounds,
        }
    }
}

/// Checks the one-hop clustering conditions, reporting the first violation.
///
/// # Errors
///
/// Returns the violated condition: head validity, adjacency, or head
/// independence.
pub fn check_clustering(g: &Graph, clustering: &Clustering) -> Result<(), ClusteringViolation> {
    let n = g.node_count();
    let mut is_head = vec![false; n];
    for &h in clustering.heads() {
        is_head[h as usize] = true;
    }
    for &h in clustering.heads() {
        if let Some(&other) = g.neighbors(h).iter().find(|&&u| is_head[u as usize]) {
            return Err(ClusteringViolation::AdjacentHeads {
                u: h.min(other),
                v: h.max(other),
            });
        }
    }
    for v in g.nodes() {
        let head = clustering.head_of(v);
        if !is_head[head as usize] {
            return Err(ClusteringViolation::NotAHead { node: v, head });
        }
        if head != v && !g.has_edge(v, head) {
            return Err(ClusteringViolation::NotAdjacent { node: v, head });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graph::generators;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn clustering_on_grid_is_valid() {
        let g = generators::grid2d(6, 6);
        let c = cluster_via_mis(&g, &Algorithm::feedback(), 1).unwrap();
        assert!(check_clustering(&g, &c).is_ok());
        assert!(c.cluster_count() > 1);
    }

    #[test]
    fn clusters_partition_the_nodes() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = generators::random_geometric(50, 0.2, &mut rng);
        let c = cluster_via_mis(&g, &Algorithm::feedback(), 3).unwrap();
        let total: usize = c.sizes().iter().sum();
        assert_eq!(total, g.node_count());
        assert_eq!(c.sizes().len(), c.cluster_count());
    }

    #[test]
    fn heads_affiliate_with_themselves() {
        let g = generators::cycle(10);
        let c = cluster_via_mis(&g, &Algorithm::feedback(), 5).unwrap();
        for &h in c.heads() {
            assert_eq!(c.head_of(h), h);
            assert!(c.members(h).contains(&h));
        }
    }

    #[test]
    fn members_of_non_head_is_empty() {
        let g = generators::path(6);
        let c = cluster_via_mis(&g, &Algorithm::feedback(), 2).unwrap();
        let non_head = g.nodes().find(|v| !c.heads().contains(v)).unwrap();
        assert!(c.members(non_head).is_empty());
    }

    #[test]
    fn complete_graph_is_one_cluster() {
        let g = generators::complete(8);
        let c = cluster_via_mis(&g, &Algorithm::feedback(), 4).unwrap();
        assert_eq!(c.cluster_count(), 1);
        assert_eq!(c.max_cluster_size(), 8);
        assert_eq!(c.mean_cluster_size(), Some(8.0));
    }

    #[test]
    fn edgeless_graph_every_node_is_a_head() {
        let g = Graph::empty(5);
        let c = cluster_via_mis(&g, &Algorithm::feedback(), 0).unwrap();
        assert_eq!(c.cluster_count(), 5);
        assert_eq!(c.max_cluster_size(), 1);
        assert!(check_clustering(&g, &c).is_ok());
    }

    #[test]
    fn empty_graph_has_no_clusters() {
        let g = Graph::empty(0);
        let c = cluster_via_mis(&g, &Algorithm::feedback(), 0).unwrap();
        assert_eq!(c.cluster_count(), 0);
        assert_eq!(c.mean_cluster_size(), None);
        assert_eq!(c.max_cluster_size(), 0);
    }

    #[test]
    fn cluster_size_bounded_by_degree_plus_one() {
        let g = generators::grid2d(7, 7); // Δ = 4
        let c = cluster_via_mis(&g, &Algorithm::feedback(), 9).unwrap();
        assert!(c.max_cluster_size() <= 5);
    }

    #[test]
    fn checker_rejects_bad_affiliations() {
        let g = generators::path(4); // 0-1-2-3
                                     // Heads {0, 3}; node 1 must go to 0, node 2 to 3.
        let good = Clustering {
            heads: vec![0, 3],
            assignment: vec![0, 0, 3, 3],
            rounds: 0,
        };
        assert!(check_clustering(&g, &good).is_ok());
        let not_a_head = Clustering {
            heads: vec![0, 3],
            assignment: vec![0, 2, 3, 3],
            rounds: 0,
        };
        assert_eq!(
            check_clustering(&g, &not_a_head),
            Err(ClusteringViolation::NotAHead { node: 1, head: 2 })
        );
        let not_adjacent = Clustering {
            heads: vec![0, 3],
            assignment: vec![0, 3, 3, 3],
            rounds: 0,
        };
        assert_eq!(
            check_clustering(&g, &not_adjacent),
            Err(ClusteringViolation::NotAdjacent { node: 1, head: 3 })
        );
        let adjacent_heads = Clustering {
            heads: vec![0, 1],
            assignment: vec![0, 1, 1, 1],
            rounds: 0,
        };
        assert!(matches!(
            check_clustering(&g, &adjacent_heads),
            Err(ClusteringViolation::AdjacentHeads { .. })
        ));
    }

    #[test]
    fn violation_display_is_informative() {
        assert!(ClusteringViolation::NotAHead { node: 1, head: 2 }
            .to_string()
            .contains("non-head"));
        assert!(ClusteringViolation::NotAdjacent { node: 1, head: 2 }
            .to_string()
            .contains("adjacent"));
        assert!(ClusteringViolation::AdjacentHeads { u: 1, v: 2 }
            .to_string()
            .contains("heads"));
    }

    #[test]
    fn clustering_is_deterministic_in_seed() {
        let mut rng = SmallRng::seed_from_u64(14);
        let g = generators::gnp(30, 0.2, &mut rng);
        let a = cluster_via_mis(&g, &Algorithm::feedback(), 50).unwrap();
        let b = cluster_via_mis(&g, &Algorithm::feedback(), 50).unwrap();
        assert_eq!(a, b);
    }
}
