//! Distributed applications built on MIS selection.
//!
//! The paper's conclusion observes that *“selecting a maximal independent
//! set can also be used as a fundamental building block in algorithms for
//! many other problems in distributed computing”*. This crate makes that
//! concrete: every classical reduction below runs the beeping-model MIS
//! algorithms of [`mis_core`] (the paper's feedback algorithm by default)
//! as its only distributed primitive, so each application inherits the
//! `O(log n)` round and `O(1)` beep-per-node guarantees of the underlying
//! selection.
//!
//! | Problem | Reduction | Module |
//! |---------|-----------|--------|
//! | Maximal matching | MIS on the line graph `L(G)` | [`matching`] |
//! | `(Δ+1)`-colouring | MIS on `G □ K_{Δ+1}` (Luby's reduction), or iterated MIS colour classes | [`coloring`] |
//! | (Connected) dominating set | every MIS dominates; connect heads ≤ 3 hops apart | [`dominating`] |
//! | Clusterhead election | MIS heads + one-hop member assignment | [`clustering`] |
//!
//! Every constructor takes the graph, an [`Algorithm`](mis_core::Algorithm)
//! choice and a 64-bit seed, and returns a verified structure together with
//! the number of beeping rounds consumed, so the applications can be
//! benchmarked with the same methodology as the paper's figures.
//!
//! Two implementation properties matter at scale:
//!
//! * **Derived graphs are lazy views.** The reductions never materialise
//!   their derived graph: matching runs on a
//!   [`LineGraphView`](mis_graph::LineGraphView), the product colouring on
//!   a [`ProductView`](mis_graph::ProductView), and each iterated-MIS phase
//!   on an [`InducedView`](mis_graph::InducedView) — all `O(n + m)`
//!   indexing state over the borrowed base CSR, with adjacency computed on
//!   the fly by the generic simulator.
//! * **Batch execution via [`AppEngine`].** Each application implements the
//!   workspace's unified `Engine` contract through [`engine::AppEngine`],
//!   so `mis_core::RunPlan::for_engine(AppEngine::matching(…), runs)`
//!   fans application workloads across the deterministic work-stealing
//!   batch path with bit-identical records for any `--jobs` count.
//!
//! # Quick start
//!
//! ```
//! use mis_apps::matching::maximal_matching;
//! use mis_core::Algorithm;
//! use mis_graph::generators;
//!
//! # fn main() -> Result<(), mis_core::SolveError> {
//! let g = generators::cycle(8);
//! let m = maximal_matching(&g, &Algorithm::feedback(), 7)?;
//! assert!(m.len() >= 3); // any maximal matching of C8 has 3 or 4 edges
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clustering;
pub mod coloring;
pub mod dominating;
pub mod engine;
pub mod matching;

pub use clustering::{cluster_via_mis, cluster_via_mis_with_config, Clustering};
pub use coloring::{
    iterated_mis_coloring, product_coloring, product_coloring_with_colors, Coloring, ColoringError,
};
pub use dominating::{
    connected_dominating_set, dominating_set_via_mis, dominating_set_via_mis_with_config,
    ConnectedDominatingSet, DominatingSet, DominatingSetError,
};
pub use engine::{AppEngine, AppKind, AppOutcome, AppRecord, AppResult};
pub use matching::{maximal_matching, maximal_matching_with_config, Matching};
