//! Dominating sets and connected dominating sets via MIS.
//!
//! Every maximal independent set is a *dominating set* — maximality says
//! exactly that every node outside the set has a neighbour inside it — and
//! it is in fact an *independent* dominating set. Wireless protocols use
//! this to elect a routing backbone: the MIS members become backbone nodes
//! and, because any two MIS members of a connected graph are at most three
//! hops apart, adding the intermediate nodes on such short paths yields a
//! *connected* dominating set (the classical Wan–Alzoubi–Frieder
//! construction). With the paper's feedback algorithm as the MIS primitive
//! the election runs in `O(log n)` beeping rounds.

use core::fmt;

use mis_beeping::SimConfig;
use mis_core::{solve_mis_with_config, Algorithm, SolveError};
use mis_graph::{ops, Graph, NodeId};

/// An independent dominating set (an MIS, reinterpreted) plus its cost.
#[derive(Debug, Clone, PartialEq)]
pub struct DominatingSet {
    nodes: Vec<NodeId>,
    rounds: u32,
}

impl DominatingSet {
    /// The dominating nodes, sorted ascending.
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of dominators.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the set is empty (true only for the empty graph).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Beeping rounds taken by the underlying MIS election.
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }
}

/// A connected dominating set: MIS heads plus connector nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectedDominatingSet {
    heads: Vec<NodeId>,
    connectors: Vec<NodeId>,
    rounds: u32,
}

impl ConnectedDominatingSet {
    /// The MIS members forming the dominating core, sorted ascending.
    #[must_use]
    pub fn heads(&self) -> &[NodeId] {
        &self.heads
    }

    /// The extra nodes added to connect the heads, sorted ascending.
    #[must_use]
    pub fn connectors(&self) -> &[NodeId] {
        &self.connectors
    }

    /// All backbone nodes (heads and connectors), sorted ascending.
    #[must_use]
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut all: Vec<NodeId> = self
            .heads
            .iter()
            .chain(self.connectors.iter())
            .copied()
            .collect();
        all.sort_unstable();
        all
    }

    /// Total backbone size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heads.len() + self.connectors.len()
    }

    /// Whether the backbone is empty (true only for the empty graph).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heads.is_empty()
    }

    /// Beeping rounds taken by the underlying MIS election.
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }
}

/// Failure modes of the dominating-set constructors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DominatingSetError {
    /// The underlying MIS run failed.
    Solve(SolveError),
    /// A connected dominating set was requested on a disconnected graph.
    Disconnected,
}

impl fmt::Display for DominatingSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DominatingSetError::Solve(e) => write!(f, "MIS run failed: {e}"),
            DominatingSetError::Disconnected => {
                f.write_str("graph is disconnected; no connected dominating set exists")
            }
        }
    }
}

impl std::error::Error for DominatingSetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DominatingSetError::Solve(e) => Some(e),
            DominatingSetError::Disconnected => None,
        }
    }
}

impl From<SolveError> for DominatingSetError {
    fn from(e: SolveError) -> Self {
        DominatingSetError::Solve(e)
    }
}

/// Elects an independent dominating set: one MIS run, reinterpreted.
///
/// # Errors
///
/// Propagates [`SolveError`] from the underlying MIS run.
///
/// # Examples
///
/// ```
/// use mis_apps::dominating::{dominating_set_via_mis, is_dominating_set};
/// use mis_core::Algorithm;
/// use mis_graph::generators;
///
/// # fn main() -> Result<(), mis_core::SolveError> {
/// let g = generators::grid2d(5, 5);
/// let ds = dominating_set_via_mis(&g, &Algorithm::feedback(), 11)?;
/// assert!(is_dominating_set(&g, ds.nodes()));
/// # Ok(())
/// # }
/// ```
pub fn dominating_set_via_mis(
    g: &Graph,
    algorithm: &Algorithm,
    seed: u64,
) -> Result<DominatingSet, SolveError> {
    dominating_set_via_mis_with_config(g, algorithm, seed, SimConfig::default())
}

/// Like [`dominating_set_via_mis`] with an explicit simulator
/// configuration — the entry point for fault-injection studies.
///
/// # Errors
///
/// As [`dominating_set_via_mis`].
pub fn dominating_set_via_mis_with_config(
    g: &Graph,
    algorithm: &Algorithm,
    seed: u64,
    config: SimConfig,
) -> Result<DominatingSet, SolveError> {
    let result = solve_mis_with_config(g, algorithm, seed, config)?;
    Ok(DominatingSet::from_mis(
        result.mis().to_vec(),
        result.rounds(),
    ))
}

impl DominatingSet {
    /// Reinterprets a verified MIS as an independent dominating set.
    /// Shared by the one-shot constructor and [`AppEngine`](crate::AppEngine).
    pub(crate) fn from_mis(nodes: Vec<NodeId>, rounds: u32) -> Self {
        DominatingSet { nodes, rounds }
    }
}

/// Elects a connected dominating set: MIS heads plus, for every pair of
/// heads at distance ≤ 3 chosen along a BFS tree over the heads, the one or
/// two intermediate connector nodes.
///
/// The resulting backbone is at most `3·|MIS|` nodes and is within a
/// constant factor of the minimum CDS on unit-disk graphs.
///
/// # Errors
///
/// [`DominatingSetError::Disconnected`] if `g` is not connected (a CDS
/// cannot exist), or a propagated [`SolveError`].
pub fn connected_dominating_set(
    g: &Graph,
    algorithm: &Algorithm,
    seed: u64,
) -> Result<ConnectedDominatingSet, DominatingSetError> {
    if !ops::is_connected(g) {
        return Err(DominatingSetError::Disconnected);
    }
    let result = solve_mis_with_config(g, algorithm, seed, SimConfig::default())?;
    let heads = result.mis().to_vec();
    let rounds = result.rounds();
    if heads.len() <= 1 {
        return Ok(ConnectedDominatingSet {
            heads,
            connectors: Vec::new(),
            rounds,
        });
    }

    let n = g.node_count();
    let mut is_head = vec![false; n];
    for &h in &heads {
        is_head[h as usize] = true;
    }

    // BFS over the "virtual" graph whose nodes are heads and whose edges
    // join heads at distance ≤ 3 in g. For each tree edge, record the
    // intermediate nodes of one shortest path as connectors.
    let mut in_backbone = vec![false; n];
    let mut visited_head = vec![false; n];
    let mut connectors = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    visited_head[heads[0] as usize] = true;
    queue.push_back(heads[0]);
    while let Some(h) = queue.pop_front() {
        // Depth-limited BFS from h (≤ 3 hops) with parent tracking.
        let mut parent = vec![u32::MAX; n];
        let mut depth = vec![u8::MAX; n];
        let mut frontier = std::collections::VecDeque::new();
        depth[h as usize] = 0;
        frontier.push_back(h);
        while let Some(v) = frontier.pop_front() {
            let d = depth[v as usize];
            if d == 3 {
                continue;
            }
            for &u in g.neighbors(v) {
                if depth[u as usize] == u8::MAX {
                    depth[u as usize] = d + 1;
                    parent[u as usize] = v;
                    frontier.push_back(u);
                }
            }
        }
        for w in 0..n as NodeId {
            if is_head[w as usize] && !visited_head[w as usize] && depth[w as usize] <= 3 {
                visited_head[w as usize] = true;
                queue.push_back(w);
                // Walk back from w to h, collecting intermediates.
                let mut cur = parent[w as usize];
                while cur != u32::MAX && cur != h {
                    if !is_head[cur as usize] && !in_backbone[cur as usize] {
                        in_backbone[cur as usize] = true;
                        connectors.push(cur);
                    }
                    cur = parent[cur as usize];
                }
            }
        }
    }
    connectors.sort_unstable();
    Ok(ConnectedDominatingSet {
        heads,
        connectors,
        rounds,
    })
}

/// Whether `set` dominates `g`: every node is in `set` or adjacent to it.
#[must_use]
pub fn is_dominating_set(g: &Graph, set: &[NodeId]) -> bool {
    let n = g.node_count();
    let mut member = vec![false; n];
    for &v in set {
        if (v as usize) >= n {
            return false;
        }
        member[v as usize] = true;
    }
    g.nodes()
        .all(|v| member[v as usize] || g.neighbors(v).iter().any(|&u| member[u as usize]))
}

/// Whether `set` is a *connected* dominating set of `g`: dominating, and
/// the subgraph induced by `set` is connected.
#[must_use]
pub fn is_connected_dominating_set(g: &Graph, set: &[NodeId]) -> bool {
    if !is_dominating_set(g, set) {
        return false;
    }
    if set.is_empty() {
        return g.is_empty();
    }
    let mut sorted = set.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    ops::is_connected(&ops::induced_subgraph(g, &sorted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graph::generators;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn mis_dominates_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(4);
        for trial in 0..5 {
            let g = generators::gnp(40, 0.1, &mut rng);
            let ds = dominating_set_via_mis(&g, &Algorithm::feedback(), trial).unwrap();
            assert!(is_dominating_set(&g, ds.nodes()));
            assert!(mis_core::verify::is_independent_set(&g, ds.nodes()));
        }
    }

    #[test]
    fn dominating_set_on_star_is_singleton_or_leaves() {
        let g = generators::star(12);
        let ds = dominating_set_via_mis(&g, &Algorithm::feedback(), 2).unwrap();
        // Either the hub alone, or all 11 leaves.
        assert!(ds.len() == 1 || ds.len() == 11);
        assert!(!ds.is_empty());
    }

    #[test]
    fn cds_on_path_contains_interior() {
        let g = generators::path(7);
        let cds = connected_dominating_set(&g, &Algorithm::feedback(), 3).unwrap();
        assert!(is_connected_dominating_set(&g, &cds.nodes()));
    }

    #[test]
    fn cds_on_grid_is_connected_and_dominating() {
        let g = generators::grid2d(6, 7);
        let cds = connected_dominating_set(&g, &Algorithm::feedback(), 8).unwrap();
        assert!(is_connected_dominating_set(&g, &cds.nodes()));
        // Backbone stays well below the full node count.
        assert!(cds.len() < g.node_count());
        assert!(cds.rounds() > 0);
    }

    #[test]
    fn cds_on_geometric_graph() {
        let mut rng = SmallRng::seed_from_u64(77);
        // Radius large enough that the RGG is almost surely connected.
        let g = generators::random_geometric(80, 0.3, &mut rng);
        if ops::is_connected(&g) {
            let cds = connected_dominating_set(&g, &Algorithm::feedback(), 6).unwrap();
            assert!(is_connected_dominating_set(&g, &cds.nodes()));
        }
    }

    #[test]
    fn cds_on_complete_graph_is_one_head() {
        let g = generators::complete(9);
        let cds = connected_dominating_set(&g, &Algorithm::feedback(), 5).unwrap();
        assert_eq!(cds.heads().len(), 1);
        assert!(cds.connectors().is_empty());
        assert_eq!(cds.len(), 1);
    }

    #[test]
    fn cds_rejects_disconnected_graph() {
        let g = generators::disjoint_cliques(&[3, 3]);
        let err = connected_dominating_set(&g, &Algorithm::feedback(), 1).unwrap_err();
        assert_eq!(err, DominatingSetError::Disconnected);
        assert!(err.to_string().contains("disconnected"));
    }

    #[test]
    fn heads_and_connectors_are_disjoint() {
        let g = generators::grid2d(5, 9);
        let cds = connected_dominating_set(&g, &Algorithm::feedback(), 13).unwrap();
        for c in cds.connectors() {
            assert!(!cds.heads().contains(c));
        }
        assert_eq!(cds.nodes().len(), cds.len());
    }

    #[test]
    fn backbone_size_is_bounded_by_three_heads() {
        let mut rng = SmallRng::seed_from_u64(21);
        let g = generators::gnp(50, 0.08, &mut rng);
        if ops::is_connected(&g) {
            let cds = connected_dominating_set(&g, &Algorithm::feedback(), 9).unwrap();
            assert!(cds.len() <= 3 * cds.heads().len());
        }
    }

    #[test]
    fn is_dominating_set_edge_cases() {
        let g = generators::path(3);
        assert!(is_dominating_set(&g, &[1]));
        assert!(!is_dominating_set(&g, &[0]));
        assert!(!is_dominating_set(&g, &[9])); // out of range
        assert!(is_dominating_set(&Graph::empty(0), &[]));
    }

    #[test]
    fn is_connected_dominating_set_edge_cases() {
        let g = generators::cycle(5);
        assert!(is_connected_dominating_set(&g, &[0, 1, 2]));
        assert!(!is_connected_dominating_set(&g, &[0, 2])); // dominating but not connected
        assert!(!is_connected_dominating_set(&g, &[0, 1])); // connected but not dominating
        assert!(is_connected_dominating_set(&Graph::empty(0), &[]));
    }

    #[test]
    fn single_node_graph_cds_is_the_node() {
        let g = Graph::empty(1);
        let cds = connected_dominating_set(&g, &Algorithm::feedback(), 0).unwrap();
        assert_eq!(cds.heads(), &[0]);
        assert!(cds.connectors().is_empty());
    }
}
