//! Maximal matching via MIS on the line graph.
//!
//! A matching of `G` is a set of pairwise non-incident edges; it is
//! *maximal* when no further edge of `G` can be added. Edges of `G` are
//! exactly the nodes of the line graph `L(G)`, and two edges are incident
//! exactly when the corresponding line-graph nodes are adjacent — so a
//! (maximal) independent set of `L(G)` is a (maximal) matching of `G`.
//! Running the paper's feedback MIS algorithm on `L(G)` therefore elects a
//! maximal matching in `O(log m)` beeping rounds, where `m = |E(G)|`.
//!
//! In a real network the line graph is not materialised: each edge is
//! simulated by one of its endpoints, and a line-graph beep is a one-bit
//! message on the two incident stars. The simulation mirrors that exactly —
//! it runs the MIS on a lazy [`LineGraphView`] that computes line-graph
//! adjacency on the fly from the base CSR, so no `O(Σ deg²)` derived
//! adjacency is ever allocated; the round/beep accounting is identical to
//! a run on the materialised `L(G)`.

use core::fmt;

use rand::Rng;

use mis_beeping::SimConfig;
use mis_core::{solve_mis_with_config, Algorithm, SolveError};
use mis_graph::{Graph, LineGraphView, NodeId};

/// A verified maximal matching together with the cost of electing it.
#[derive(Debug, Clone, PartialEq)]
pub struct Matching {
    edges: Vec<(NodeId, NodeId)>,
    rounds: u32,
    mean_beeps_per_edge: f64,
}

impl Matching {
    /// The matched edges, each as `(u, v)` with `u < v`, sorted.
    #[must_use]
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Number of matched edges.
    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the matching is empty (true exactly when the graph has no
    /// edges).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Beeping rounds taken by the MIS election on the line graph.
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Mean beeps per line-graph node, i.e. per edge of the input graph.
    #[must_use]
    pub fn mean_beeps_per_edge(&self) -> f64 {
        self.mean_beeps_per_edge
    }

    /// The characteristic vector of matched nodes: `true` for every node
    /// covered by some matched edge.
    #[must_use]
    pub fn covered(&self, node_count: usize) -> Vec<bool> {
        let mut covered = vec![false; node_count];
        for &(u, v) in &self.edges {
            covered[u as usize] = true;
            covered[v as usize] = true;
        }
        covered
    }
}

/// A violation of the maximal-matching conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchingViolation {
    /// Two matched edges share an endpoint.
    SharedEndpoint {
        /// The shared node.
        node: NodeId,
    },
    /// An edge of the graph has both endpoints unmatched (maximality
    /// broken).
    AugmentingEdge {
        /// One endpoint of the addable edge.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// A claimed matched edge is not an edge of the graph.
    UnknownEdge {
        /// One endpoint of the offending pair.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
}

impl fmt::Display for MatchingViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchingViolation::SharedEndpoint { node } => {
                write!(f, "two matched edges share endpoint {node}")
            }
            MatchingViolation::AugmentingEdge { u, v } => {
                write!(f, "edge {u}-{v} could still be added to the matching")
            }
            MatchingViolation::UnknownEdge { u, v } => {
                write!(f, "{u}-{v} is not an edge of the graph")
            }
        }
    }
}

impl std::error::Error for MatchingViolation {}

/// Elects a maximal matching by running `algorithm` (an MIS selection) on
/// the line graph of `g`.
///
/// # Errors
///
/// Propagates [`SolveError`] from the underlying MIS run; impossible on a
/// fault-free network unless the generous default round cap is hit.
///
/// # Examples
///
/// ```
/// use mis_apps::matching::{check_matching, maximal_matching};
/// use mis_core::Algorithm;
/// use mis_graph::generators;
///
/// # fn main() -> Result<(), mis_core::SolveError> {
/// let g = generators::complete(6);
/// let m = maximal_matching(&g, &Algorithm::feedback(), 3)?;
/// assert!(check_matching(&g, m.edges()).is_ok());
/// assert_eq!(m.len(), 3); // maximal = perfect on K6
/// # Ok(())
/// # }
/// ```
pub fn maximal_matching(
    g: &Graph,
    algorithm: &Algorithm,
    seed: u64,
) -> Result<Matching, SolveError> {
    maximal_matching_with_config(g, algorithm, seed, SimConfig::default())
}

/// Like [`maximal_matching`] with an explicit simulator configuration —
/// the entry point for fault-injection studies (message loss, late
/// wake-ups) on the matching election.
///
/// # Errors
///
/// As [`maximal_matching`]; fault-injecting configurations can make both
/// [`SolveError`] variants reachable, in which case no (possibly invalid)
/// matching is returned.
pub fn maximal_matching_with_config(
    g: &Graph,
    algorithm: &Algorithm,
    seed: u64,
    config: SimConfig,
) -> Result<Matching, SolveError> {
    let view = LineGraphView::new(g);
    let result = solve_mis_with_config(&view, algorithm, seed, config)?;
    Ok(Matching::from_line_mis(
        &view,
        result.mis(),
        result.rounds(),
        result.mean_beeps_per_node(),
    ))
}

impl Matching {
    /// Decodes a verified line-graph MIS into the matching it stands for.
    /// Shared by the one-shot constructor and [`AppEngine`](crate::AppEngine).
    pub(crate) fn from_line_mis(
        view: &LineGraphView<'_>,
        mis: &[NodeId],
        rounds: u32,
        mean_beeps_per_edge: f64,
    ) -> Self {
        // MIS ids ascend and edge ids are canonical-order, so the decoded
        // edge list is already sorted.
        let edges: Vec<(NodeId, NodeId)> = mis.iter().map(|&i| view.edge_of(i)).collect();
        debug_assert!(edges.windows(2).all(|w| w[0] < w[1]));
        Matching {
            edges,
            rounds,
            mean_beeps_per_edge,
        }
    }
}

/// Checks the maximal-matching conditions, reporting the first violation.
///
/// # Errors
///
/// Returns the violated condition: edge validity, disjointness, or
/// maximality.
pub fn check_matching(g: &Graph, edges: &[(NodeId, NodeId)]) -> Result<(), MatchingViolation> {
    let n = g.node_count();
    let mut covered = vec![false; n];
    for &(u, v) in edges {
        if (u as usize) >= n || (v as usize) >= n || !g.has_edge(u, v) {
            return Err(MatchingViolation::UnknownEdge { u, v });
        }
        for node in [u, v] {
            if covered[node as usize] {
                return Err(MatchingViolation::SharedEndpoint { node });
            }
            covered[node as usize] = true;
        }
    }
    for (u, v) in g.edges() {
        if !covered[u as usize] && !covered[v as usize] {
            return Err(MatchingViolation::AugmentingEdge { u, v });
        }
    }
    Ok(())
}

/// Whether `edges` is a maximal matching of `g`.
#[must_use]
pub fn is_maximal_matching(g: &Graph, edges: &[(NodeId, NodeId)]) -> bool {
    check_matching(g, edges).is_ok()
}

/// The trivial sequential baseline: scan edges in canonical order, adding
/// each edge whose endpoints are both still unmatched.
#[must_use]
pub fn greedy_matching(g: &Graph) -> Vec<(NodeId, NodeId)> {
    let mut covered = vec![false; g.node_count()];
    let mut matching = Vec::new();
    for (u, v) in g.edges() {
        if !covered[u as usize] && !covered[v as usize] {
            covered[u as usize] = true;
            covered[v as usize] = true;
            matching.push((u, v));
        }
    }
    matching
}

/// Greedy matching over a uniformly random edge order — the randomised
/// sequential baseline.
#[must_use]
pub fn random_greedy_matching<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Vec<(NodeId, NodeId)> {
    use rand::seq::SliceRandom;
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    edges.shuffle(rng);
    let mut covered = vec![false; g.node_count()];
    let mut matching = Vec::new();
    for (u, v) in edges {
        if !covered[u as usize] && !covered[v as usize] {
            covered[u as usize] = true;
            covered[v as usize] = true;
            matching.push((u, v));
        }
    }
    matching.sort_unstable();
    matching
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graph::generators;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn matching_on_cycle_is_maximal() {
        let g = generators::cycle(9);
        let m = maximal_matching(&g, &Algorithm::feedback(), 1).unwrap();
        assert!(check_matching(&g, m.edges()).is_ok());
        // A maximal matching of C9 has 3 or 4 edges.
        assert!((3..=4).contains(&m.len()), "got {}", m.len());
    }

    #[test]
    fn matching_on_complete_graph_is_near_perfect() {
        for n in [2, 5, 8, 13] {
            let g = generators::complete(n);
            let m = maximal_matching(&g, &Algorithm::feedback(), n as u64).unwrap();
            assert!(check_matching(&g, m.edges()).is_ok());
            assert_eq!(m.len(), n / 2); // maximal = maximum on K_n
        }
    }

    #[test]
    fn matching_on_star_has_one_edge() {
        let g = generators::star(10);
        let m = maximal_matching(&g, &Algorithm::feedback(), 4).unwrap();
        assert_eq!(m.len(), 1);
        assert!(is_maximal_matching(&g, m.edges()));
    }

    #[test]
    fn matching_on_edgeless_graph_is_empty() {
        let g = Graph::empty(5);
        let m = maximal_matching(&g, &Algorithm::feedback(), 0).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert!(check_matching(&g, m.edges()).is_ok());
    }

    #[test]
    fn matching_works_under_global_sweep_schedule() {
        let mut rng = SmallRng::seed_from_u64(9);
        let g = generators::gnp(40, 0.2, &mut rng);
        let m = maximal_matching(&g, &Algorithm::sweep(), 5).unwrap();
        assert!(check_matching(&g, m.edges()).is_ok());
    }

    #[test]
    fn matching_size_is_within_factor_two_of_any_other() {
        // Any two maximal matchings differ by at most a factor of 2.
        let mut rng = SmallRng::seed_from_u64(11);
        let g = generators::gnp(60, 0.1, &mut rng);
        let distributed = maximal_matching(&g, &Algorithm::feedback(), 2).unwrap();
        let greedy = greedy_matching(&g);
        assert!(distributed.len() * 2 >= greedy.len());
        assert!(greedy.len() * 2 >= distributed.len());
    }

    #[test]
    fn covered_marks_exactly_matched_endpoints() {
        let g = generators::path(5);
        let m = maximal_matching(&g, &Algorithm::feedback(), 8).unwrap();
        let covered = m.covered(g.node_count());
        let expected = covered.iter().filter(|&&c| c).count();
        assert_eq!(expected, 2 * m.len());
    }

    #[test]
    fn checker_rejects_shared_endpoint() {
        let g = generators::path(3); // edges 0-1, 1-2
        assert_eq!(
            check_matching(&g, &[(0, 1), (1, 2)]),
            Err(MatchingViolation::SharedEndpoint { node: 1 })
        );
    }

    #[test]
    fn checker_rejects_non_edge() {
        let g = generators::path(3);
        assert_eq!(
            check_matching(&g, &[(0, 2)]),
            Err(MatchingViolation::UnknownEdge { u: 0, v: 2 })
        );
    }

    #[test]
    fn checker_rejects_non_maximal() {
        let g = generators::path(5); // 0-1-2-3-4
        assert_eq!(
            check_matching(&g, &[(0, 1)]),
            Err(MatchingViolation::AugmentingEdge { u: 2, v: 3 })
        );
    }

    #[test]
    fn checker_accepts_empty_on_edgeless() {
        assert!(check_matching(&Graph::empty(3), &[]).is_ok());
    }

    #[test]
    fn greedy_baselines_are_maximal() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generators::gnp(50, 0.15, &mut rng);
        assert!(is_maximal_matching(&g, &greedy_matching(&g)));
        let random = random_greedy_matching(&g, &mut rng);
        assert!(is_maximal_matching(&g, &random));
    }

    #[test]
    fn matching_is_deterministic_in_seed() {
        let mut rng = SmallRng::seed_from_u64(17);
        let g = generators::gnp(30, 0.3, &mut rng);
        let a = maximal_matching(&g, &Algorithm::feedback(), 42).unwrap();
        let b = maximal_matching(&g, &Algorithm::feedback(), 42).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn violation_display_is_informative() {
        let texts = [
            MatchingViolation::SharedEndpoint { node: 3 }.to_string(),
            MatchingViolation::AugmentingEdge { u: 1, v: 2 }.to_string(),
            MatchingViolation::UnknownEdge { u: 0, v: 9 }.to_string(),
        ];
        assert!(texts[0].contains('3'));
        assert!(texts[1].contains("added"));
        assert!(texts[2].contains("not an edge"));
    }
}
