//! Distributed `(Δ+1)`-colouring via MIS.
//!
//! Two classical reductions are provided, both driven by the beeping-model
//! MIS algorithms of [`mis_core`]:
//!
//! * **Luby's product reduction** ([`product_coloring`]): run one MIS on
//!   the cartesian product `G □ K_{Δ+1}`. Product node `(v, c)` standing in
//!   the independent set means “`v` takes colour `c`”. Independence forbids
//!   a node taking two colours and adjacent nodes sharing a colour;
//!   maximality forces every node to take some colour, because a node with
//!   all `Δ+1` colours blocked would need `Δ+1` distinctly-coloured
//!   neighbours but has only `Δ`. One MIS run, `Δ+1` colours, `O(log(nΔ))`
//!   rounds.
//! * **Iterated MIS** ([`iterated_mis_coloring`]): repeatedly select an MIS
//!   among the still-uncoloured nodes and give it the next colour. Every
//!   uncoloured node loses at least one uncoloured neighbour per phase
//!   (its dominator), so at most `Δ+1` phases — and colours — are needed.

use core::fmt;

use mis_beeping::SimConfig;
use mis_core::{solve_mis_with_config, Algorithm, SolveError};
use mis_graph::{generators, ops, Graph, NodeId};

/// A verified proper colouring together with the cost of computing it.
#[derive(Debug, Clone, PartialEq)]
pub struct Coloring {
    colors: Vec<u32>,
    color_count: u32,
    rounds: u32,
}

impl Coloring {
    /// The colour of each node, indexed by node id.
    #[must_use]
    pub fn colors(&self) -> &[u32] {
        &self.colors
    }

    /// The colour assigned to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn color(&self, v: NodeId) -> u32 {
        self.colors[v as usize]
    }

    /// Number of distinct colours used.
    #[must_use]
    pub fn color_count(&self) -> u32 {
        self.color_count
    }

    /// Total beeping rounds across all underlying MIS runs.
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// The nodes of one colour class, sorted ascending.
    #[must_use]
    pub fn class(&self, color: u32) -> Vec<NodeId> {
        (0..self.colors.len() as NodeId)
            .filter(|&v| self.colors[v as usize] == color)
            .collect()
    }
}

/// Failure modes of the colouring constructors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ColoringError {
    /// The underlying MIS run failed.
    Solve(SolveError),
    /// The palette was too small: some node ended up with every colour
    /// blocked by neighbours (possible only when fewer than `Δ+1` colours
    /// are requested).
    PaletteExhausted {
        /// The node left uncoloured.
        node: NodeId,
    },
}

impl fmt::Display for ColoringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColoringError::Solve(e) => write!(f, "MIS run failed: {e}"),
            ColoringError::PaletteExhausted { node } => {
                write!(f, "palette too small: node {node} left uncoloured")
            }
        }
    }
}

impl std::error::Error for ColoringError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ColoringError::Solve(e) => Some(e),
            ColoringError::PaletteExhausted { .. } => None,
        }
    }
}

impl From<SolveError> for ColoringError {
    fn from(e: SolveError) -> Self {
        ColoringError::Solve(e)
    }
}

/// A violation of the proper-colouring conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColoringViolation {
    /// An edge with both endpoints the same colour.
    MonochromaticEdge {
        /// One endpoint of the offending edge.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// The colour vector does not cover every node of the graph.
    WrongLength {
        /// Number of colours supplied.
        got: usize,
        /// Number of nodes in the graph.
        expected: usize,
    },
}

impl fmt::Display for ColoringViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColoringViolation::MonochromaticEdge { u, v } => {
                write!(f, "adjacent nodes {u} and {v} share a colour")
            }
            ColoringViolation::WrongLength { got, expected } => {
                write!(
                    f,
                    "colour vector has length {got}, graph has {expected} nodes"
                )
            }
        }
    }
}

impl std::error::Error for ColoringViolation {}

/// Colours `g` with `Δ+1` colours by one MIS run on `G □ K_{Δ+1}`.
///
/// # Errors
///
/// Propagates [`SolveError`] from the MIS run; the palette cannot be
/// exhausted because `Δ+1` colours always suffice.
///
/// # Examples
///
/// ```
/// use mis_apps::coloring::{check_coloring, product_coloring};
/// use mis_core::Algorithm;
/// use mis_graph::generators;
///
/// # fn main() -> Result<(), mis_apps::coloring::ColoringError> {
/// let g = generators::cycle(7);
/// let coloring = product_coloring(&g, &Algorithm::feedback(), 5)?;
/// assert!(check_coloring(&g, coloring.colors()).is_ok());
/// assert!(coloring.color_count() <= 3); // Δ+1 = 3 on a cycle
/// # Ok(())
/// # }
/// ```
pub fn product_coloring(
    g: &Graph,
    algorithm: &Algorithm,
    seed: u64,
) -> Result<Coloring, ColoringError> {
    product_coloring_with_colors(g, g.max_degree() as u32 + 1, algorithm, seed)
}

/// Like [`product_coloring`] with an explicit palette size `k`.
///
/// Useful for graphs known to admit fewer colours (e.g. bipartite graphs
/// with `k = 2`... though the reduction only *guarantees* success for
/// `k ≥ Δ+1`).
///
/// # Errors
///
/// [`ColoringError::PaletteExhausted`] if some node ends with all `k`
/// colours blocked (possible when `k ≤ Δ`), or a propagated [`SolveError`].
///
/// # Panics
///
/// Panics if `k == 0` and the graph is non-empty.
pub fn product_coloring_with_colors(
    g: &Graph,
    k: u32,
    algorithm: &Algorithm,
    seed: u64,
) -> Result<Coloring, ColoringError> {
    let n = g.node_count();
    if n == 0 {
        return Ok(Coloring {
            colors: Vec::new(),
            color_count: 0,
            rounds: 0,
        });
    }
    assert!(k > 0, "palette must contain at least one colour");
    let palette = generators::complete(k as usize);
    let product = ops::cartesian_product(g, &palette);
    let result = solve_mis_with_config(&product, algorithm, seed, SimConfig::default())?;
    let mut colors = vec![u32::MAX; n];
    for &node in result.mis() {
        let v = node / k;
        let c = node % k;
        debug_assert_eq!(colors[v as usize], u32::MAX, "two colours for one node");
        colors[v as usize] = c;
    }
    if let Some(v) = colors.iter().position(|&c| c == u32::MAX) {
        return Err(ColoringError::PaletteExhausted { node: v as NodeId });
    }
    let color_count = distinct_colors(&colors);
    Ok(Coloring {
        colors,
        color_count,
        rounds: result.rounds(),
    })
}

/// Colours `g` by iterated MIS: phase `i` selects an MIS among the nodes
/// still uncoloured and assigns it colour `i`. Uses at most `Δ+1` colours.
///
/// # Errors
///
/// Propagates [`SolveError`] from any of the phase MIS runs.
pub fn iterated_mis_coloring(
    g: &Graph,
    algorithm: &Algorithm,
    seed: u64,
) -> Result<Coloring, ColoringError> {
    let n = g.node_count();
    let mut colors = vec![u32::MAX; n];
    let mut active: Vec<NodeId> = g.nodes().collect();
    let mut rounds = 0u32;
    let mut color = 0u32;
    while !active.is_empty() {
        let sub = ops::induced_subgraph(g, &active);
        let result = solve_mis_with_config(
            &sub,
            algorithm,
            seed.wrapping_add(u64::from(color)),
            SimConfig::default(),
        )?;
        rounds += result.rounds();
        for &local in result.mis() {
            colors[active[local as usize] as usize] = color;
        }
        active.retain(|&v| colors[v as usize] == u32::MAX);
        color += 1;
    }
    Ok(Coloring {
        colors,
        color_count: color,
        rounds,
    })
}

/// Checks that `colors` is a proper colouring of `g`.
///
/// # Errors
///
/// Returns the violated condition: vector length or a monochromatic edge.
pub fn check_coloring(g: &Graph, colors: &[u32]) -> Result<(), ColoringViolation> {
    if colors.len() != g.node_count() {
        return Err(ColoringViolation::WrongLength {
            got: colors.len(),
            expected: g.node_count(),
        });
    }
    for (u, v) in g.edges() {
        if colors[u as usize] == colors[v as usize] {
            return Err(ColoringViolation::MonochromaticEdge { u, v });
        }
    }
    Ok(())
}

/// Whether `colors` is a proper colouring of `g`.
#[must_use]
pub fn is_proper_coloring(g: &Graph, colors: &[u32]) -> bool {
    check_coloring(g, colors).is_ok()
}

/// The sequential first-fit baseline: scan nodes in ascending order, giving
/// each the smallest colour unused by its already-coloured neighbours.
/// Uses at most `Δ+1` colours.
#[must_use]
pub fn greedy_coloring(g: &Graph) -> Vec<u32> {
    let n = g.node_count();
    let mut colors = vec![u32::MAX; n];
    let mut blocked = vec![false; g.max_degree() + 1];
    for v in g.nodes() {
        blocked.fill(false);
        for &u in g.neighbors(v) {
            let c = colors[u as usize];
            if c != u32::MAX {
                blocked[c as usize] = true;
            }
        }
        colors[v as usize] = blocked
            .iter()
            .position(|&b| !b)
            .expect("Δ+1 colours suffice") as u32;
    }
    colors
}

fn distinct_colors(colors: &[u32]) -> u32 {
    let mut seen: Vec<u32> = colors.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn product_coloring_on_cycle() {
        let g = generators::cycle(10);
        let c = product_coloring(&g, &Algorithm::feedback(), 1).unwrap();
        assert!(check_coloring(&g, c.colors()).is_ok());
        assert!(c.color_count() <= 3);
        assert!(c.color_count() >= 2);
    }

    #[test]
    fn product_coloring_on_complete_graph_uses_all_colors() {
        let g = generators::complete(6);
        let c = product_coloring(&g, &Algorithm::feedback(), 2).unwrap();
        assert!(is_proper_coloring(&g, c.colors()));
        assert_eq!(c.color_count(), 6); // χ(K6) = 6 = Δ+1
    }

    #[test]
    fn product_coloring_on_random_graph() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = generators::gnp(30, 0.2, &mut rng);
        let c = product_coloring(&g, &Algorithm::feedback(), 9).unwrap();
        assert!(check_coloring(&g, c.colors()).is_ok());
        assert!(c.color_count() <= g.max_degree() as u32 + 1);
    }

    #[test]
    fn product_coloring_of_empty_graph() {
        let c = product_coloring(&Graph::empty(0), &Algorithm::feedback(), 0).unwrap();
        assert_eq!(c.color_count(), 0);
        assert_eq!(c.rounds(), 0);
        assert!(c.colors().is_empty());
    }

    #[test]
    fn product_coloring_of_edgeless_graph_is_monochromatic() {
        let g = Graph::empty(7);
        let c = product_coloring(&g, &Algorithm::feedback(), 3).unwrap();
        assert_eq!(c.color_count(), 1);
        assert!(c.colors().iter().all(|&x| x == 0));
    }

    #[test]
    fn small_palette_on_bipartite_graph_can_succeed() {
        // Even cycles are bipartite: k = 2 may succeed (maximality pressure
        // doesn't guarantee it, but the checker validates whenever it does).
        let g = generators::cycle(8);
        match product_coloring_with_colors(&g, 2, &Algorithm::feedback(), 4) {
            Ok(c) => {
                assert!(is_proper_coloring(&g, c.colors()));
                assert_eq!(c.color_count(), 2);
            }
            Err(ColoringError::PaletteExhausted { .. }) => {} // also legitimate
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn small_palette_on_complete_graph_is_exhausted() {
        let g = generators::complete(5);
        let err = product_coloring_with_colors(&g, 3, &Algorithm::feedback(), 6).unwrap_err();
        assert!(matches!(err, ColoringError::PaletteExhausted { .. }));
    }

    #[test]
    fn iterated_coloring_on_cycle() {
        let g = generators::cycle(11);
        let c = iterated_mis_coloring(&g, &Algorithm::feedback(), 7).unwrap();
        assert!(check_coloring(&g, c.colors()).is_ok());
        assert!(c.color_count() <= 3);
    }

    #[test]
    fn iterated_coloring_respects_delta_plus_one() {
        let mut rng = SmallRng::seed_from_u64(23);
        for trial in 0..5 {
            let g = generators::gnp(40, 0.15, &mut rng);
            let c = iterated_mis_coloring(&g, &Algorithm::feedback(), trial).unwrap();
            assert!(check_coloring(&g, c.colors()).is_ok());
            assert!(c.color_count() <= g.max_degree() as u32 + 1);
        }
    }

    #[test]
    fn iterated_coloring_of_complete_graph_uses_n_colors() {
        let g = generators::complete(7);
        let c = iterated_mis_coloring(&g, &Algorithm::feedback(), 1).unwrap();
        assert_eq!(c.color_count(), 7);
    }

    #[test]
    fn iterated_coloring_first_class_is_mis() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = generators::gnp(25, 0.3, &mut rng);
        let c = iterated_mis_coloring(&g, &Algorithm::feedback(), 12).unwrap();
        let class0 = c.class(0);
        assert!(mis_core::verify::is_maximal_independent_set(&g, &class0));
    }

    #[test]
    fn every_color_class_is_independent() {
        let mut rng = SmallRng::seed_from_u64(31);
        let g = generators::gnp(30, 0.25, &mut rng);
        let c = product_coloring(&g, &Algorithm::feedback(), 3).unwrap();
        for color in 0..c.color_count() {
            assert!(mis_core::verify::is_independent_set(&g, &c.class(color)));
        }
    }

    #[test]
    fn greedy_coloring_is_proper_and_bounded() {
        let mut rng = SmallRng::seed_from_u64(8);
        let g = generators::gnp(50, 0.2, &mut rng);
        let colors = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &colors));
        let max = colors.iter().max().copied().unwrap_or(0);
        assert!(max <= g.max_degree() as u32);
    }

    #[test]
    fn checker_rejects_monochromatic_edge() {
        let g = generators::path(2);
        assert_eq!(
            check_coloring(&g, &[0, 0]),
            Err(ColoringViolation::MonochromaticEdge { u: 0, v: 1 })
        );
    }

    #[test]
    fn checker_rejects_wrong_length() {
        let g = generators::path(3);
        assert_eq!(
            check_coloring(&g, &[0, 1]),
            Err(ColoringViolation::WrongLength {
                got: 2,
                expected: 3
            })
        );
    }

    #[test]
    fn coloring_error_display_and_source() {
        let err = ColoringError::PaletteExhausted { node: 4 };
        assert!(err.to_string().contains("4"));
        use std::error::Error as _;
        assert!(err.source().is_none());
        let solve = ColoringError::Solve(SolveError::RoundLimitReached { rounds: 10 });
        assert!(solve.source().is_some());
    }

    #[test]
    fn coloring_is_deterministic_in_seed() {
        let mut rng = SmallRng::seed_from_u64(77);
        let g = generators::gnp(20, 0.3, &mut rng);
        let a = product_coloring(&g, &Algorithm::feedback(), 99).unwrap();
        let b = product_coloring(&g, &Algorithm::feedback(), 99).unwrap();
        assert_eq!(a, b);
    }
}
