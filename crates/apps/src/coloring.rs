//! Distributed `(Δ+1)`-colouring via MIS.
//!
//! Two classical reductions are provided, both driven by the beeping-model
//! MIS algorithms of [`mis_core`]:
//!
//! * **Luby's product reduction** ([`product_coloring`]): run one MIS on
//!   the cartesian product `G □ K_{Δ+1}`. Product node `(v, c)` standing in
//!   the independent set means “`v` takes colour `c`”. Independence forbids
//!   a node taking two colours and adjacent nodes sharing a colour;
//!   maximality forces every node to take some colour, because a node with
//!   all `Δ+1` colours blocked would need `Δ+1` distinctly-coloured
//!   neighbours but has only `Δ`. One MIS run, `Δ+1` colours, `O(log(nΔ))`
//!   rounds.
//! * **Iterated MIS** ([`iterated_mis_coloring`]): repeatedly select an MIS
//!   among the still-uncoloured nodes and give it the next colour. Every
//!   uncoloured node loses at least one uncoloured neighbour per phase
//!   (its dominator), so at most `Δ+1` phases — and colours — are needed.

use core::fmt;

use mis_beeping::rng::trial_seed;
use mis_beeping::SimConfig;
use mis_core::{solve_mis_with_config, Algorithm, SolveError};
use mis_graph::{Graph, InducedView, NodeId, ProductView};

/// A verified proper colouring together with the cost of computing it.
#[derive(Debug, Clone, PartialEq)]
pub struct Coloring {
    colors: Vec<u32>,
    color_count: u32,
    rounds: u32,
}

impl Coloring {
    /// The colour of each node, indexed by node id.
    #[must_use]
    pub fn colors(&self) -> &[u32] {
        &self.colors
    }

    /// The colour assigned to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn color(&self, v: NodeId) -> u32 {
        self.colors[v as usize]
    }

    /// Number of distinct colours used.
    #[must_use]
    pub fn color_count(&self) -> u32 {
        self.color_count
    }

    /// Total beeping rounds across all underlying MIS runs.
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// The nodes of one colour class, sorted ascending.
    #[must_use]
    pub fn class(&self, color: u32) -> Vec<NodeId> {
        (0..self.colors.len() as NodeId)
            .filter(|&v| self.colors[v as usize] == color)
            .collect()
    }
}

/// Failure modes of the colouring constructors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ColoringError {
    /// The underlying MIS run failed.
    Solve(SolveError),
    /// The palette was too small: some node ended up with every colour
    /// blocked by neighbours (possible only when fewer than `Δ+1` colours
    /// are requested, including the degenerate `k = 0` palette on a
    /// non-empty graph).
    PaletteExhausted {
        /// The node left uncoloured.
        node: NodeId,
    },
    /// The product MIS claimed two colours for one node. Unreachable for a
    /// *verified* MIS — product nodes `(v, a)` and `(v, b)` are adjacent,
    /// so independence forbids this — but kept as a real error (rather
    /// than a debug assertion) so a violation can never silently overwrite
    /// a colour in release builds.
    ConflictingColors {
        /// The doubly-coloured node.
        node: NodeId,
    },
}

impl fmt::Display for ColoringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColoringError::Solve(e) => write!(f, "MIS run failed: {e}"),
            ColoringError::PaletteExhausted { node } => {
                write!(f, "palette too small: node {node} left uncoloured")
            }
            ColoringError::ConflictingColors { node } => {
                write!(f, "product MIS assigned two colours to node {node}")
            }
        }
    }
}

impl std::error::Error for ColoringError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ColoringError::Solve(e) => Some(e),
            ColoringError::PaletteExhausted { .. } | ColoringError::ConflictingColors { .. } => {
                None
            }
        }
    }
}

impl From<SolveError> for ColoringError {
    fn from(e: SolveError) -> Self {
        ColoringError::Solve(e)
    }
}

/// A violation of the proper-colouring conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColoringViolation {
    /// An edge with both endpoints the same colour.
    MonochromaticEdge {
        /// One endpoint of the offending edge.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// The colour vector does not cover every node of the graph.
    WrongLength {
        /// Number of colours supplied.
        got: usize,
        /// Number of nodes in the graph.
        expected: usize,
    },
}

impl fmt::Display for ColoringViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColoringViolation::MonochromaticEdge { u, v } => {
                write!(f, "adjacent nodes {u} and {v} share a colour")
            }
            ColoringViolation::WrongLength { got, expected } => {
                write!(
                    f,
                    "colour vector has length {got}, graph has {expected} nodes"
                )
            }
        }
    }
}

impl std::error::Error for ColoringViolation {}

/// Colours `g` with `Δ+1` colours by one MIS run on `G □ K_{Δ+1}`.
///
/// # Errors
///
/// Propagates [`SolveError`] from the MIS run; the palette cannot be
/// exhausted because `Δ+1` colours always suffice.
///
/// # Examples
///
/// ```
/// use mis_apps::coloring::{check_coloring, product_coloring};
/// use mis_core::Algorithm;
/// use mis_graph::generators;
///
/// # fn main() -> Result<(), mis_apps::coloring::ColoringError> {
/// let g = generators::cycle(7);
/// let coloring = product_coloring(&g, &Algorithm::feedback(), 5)?;
/// assert!(check_coloring(&g, coloring.colors()).is_ok());
/// assert!(coloring.color_count() <= 3); // Δ+1 = 3 on a cycle
/// # Ok(())
/// # }
/// ```
pub fn product_coloring(
    g: &Graph,
    algorithm: &Algorithm,
    seed: u64,
) -> Result<Coloring, ColoringError> {
    product_coloring_with_colors(g, g.max_degree() as u32 + 1, algorithm, seed)
}

/// Like [`product_coloring`] with an explicit palette size `k`.
///
/// Useful for graphs known to admit fewer colours (e.g. bipartite graphs
/// with `k = 2`... though the reduction only *guarantees* success for
/// `k ≥ Δ+1`). The product graph `G □ K_k` is never materialised: the MIS
/// runs on a lazy [`ProductView`] over the base CSR.
///
/// # Errors
///
/// [`ColoringError::PaletteExhausted`] if some node ends with all `k`
/// colours blocked (possible when `k ≤ Δ`, and always the outcome of a
/// degenerate `k = 0` palette on a non-empty graph), or a propagated
/// [`SolveError`].
pub fn product_coloring_with_colors(
    g: &Graph,
    k: u32,
    algorithm: &Algorithm,
    seed: u64,
) -> Result<Coloring, ColoringError> {
    let n = g.node_count();
    if n == 0 {
        return Ok(Coloring {
            colors: Vec::new(),
            color_count: 0,
            rounds: 0,
        });
    }
    let view = ProductView::new(g, k);
    let result = solve_mis_with_config(&view, algorithm, seed, SimConfig::default())?;
    let (colors, color_count) = decode_product_colors(n, k, result.mis())?;
    Ok(Coloring {
        colors,
        color_count,
        rounds: result.rounds(),
    })
}

impl Coloring {
    /// Assembles a coloring from already-decoded parts. Shared by the
    /// constructors and [`AppEngine`](crate::AppEngine).
    pub(crate) fn from_parts(colors: Vec<u32>, color_count: u32, rounds: u32) -> Self {
        Coloring {
            colors,
            color_count,
            rounds,
        }
    }
}

/// Decodes a product-graph MIS (node `(v, c)` numbered `v·k + c`) into a
/// per-node colour vector, rejecting double assignments and uncoloured
/// nodes. Shared by [`product_coloring_with_colors`] and
/// [`AppEngine`](crate::AppEngine).
pub(crate) fn decode_product_colors(
    n: usize,
    k: u32,
    mis: &[NodeId],
) -> Result<(Vec<u32>, u32), ColoringError> {
    let mut colors = vec![u32::MAX; n];
    for &node in mis {
        let v = node / k.max(1);
        let c = node % k.max(1);
        if colors[v as usize] != u32::MAX {
            return Err(ColoringError::ConflictingColors { node: v });
        }
        colors[v as usize] = c;
    }
    if let Some(v) = colors.iter().position(|&c| c == u32::MAX) {
        return Err(ColoringError::PaletteExhausted { node: v as NodeId });
    }
    let color_count = distinct_colors(&colors);
    Ok((colors, color_count))
}

/// Colours `g` by iterated MIS: phase `i` selects an MIS among the nodes
/// still uncoloured and assigns it colour `i`. Uses at most `Δ+1` colours.
///
/// Each phase runs on a lazy [`InducedView`] of the still-uncoloured nodes
/// (the active list stays sorted, which the view requires), so no per-phase
/// subgraph is materialised. Phase seeds are derived from the caller seed
/// through the same SplitMix64 mixing the batch planner uses
/// ([`trial_seed`]); in particular caller seeds `s` and `s + 1` get fully
/// decorrelated phase streams instead of replaying each other off by one.
///
/// # Errors
///
/// Propagates [`SolveError`] from any of the phase MIS runs.
pub fn iterated_mis_coloring(
    g: &Graph,
    algorithm: &Algorithm,
    seed: u64,
) -> Result<Coloring, ColoringError> {
    let n = g.node_count();
    let mut colors = vec![u32::MAX; n];
    let mut active: Vec<NodeId> = g.nodes().collect();
    let mut rounds = 0u32;
    let mut color = 0u32;
    while !active.is_empty() {
        let sub = InducedView::new(g, &active);
        let result = solve_mis_with_config(
            &sub,
            algorithm,
            trial_seed(seed, u64::from(color)),
            SimConfig::default(),
        )?;
        // Saturate rather than wrap: pathological fault configurations can
        // push the per-phase round counts towards the u32 cap.
        rounds = rounds.saturating_add(result.rounds());
        for &local in result.mis() {
            colors[sub.original(local) as usize] = color;
        }
        active.retain(|&v| colors[v as usize] == u32::MAX);
        color += 1;
    }
    Ok(Coloring {
        colors,
        color_count: color,
        rounds,
    })
}

/// Checks that `colors` is a proper colouring of `g`.
///
/// # Errors
///
/// Returns the violated condition: vector length or a monochromatic edge.
pub fn check_coloring(g: &Graph, colors: &[u32]) -> Result<(), ColoringViolation> {
    if colors.len() != g.node_count() {
        return Err(ColoringViolation::WrongLength {
            got: colors.len(),
            expected: g.node_count(),
        });
    }
    for (u, v) in g.edges() {
        if colors[u as usize] == colors[v as usize] {
            return Err(ColoringViolation::MonochromaticEdge { u, v });
        }
    }
    Ok(())
}

/// Whether `colors` is a proper colouring of `g`.
#[must_use]
pub fn is_proper_coloring(g: &Graph, colors: &[u32]) -> bool {
    check_coloring(g, colors).is_ok()
}

/// The sequential first-fit baseline: scan nodes in ascending order, giving
/// each the smallest colour unused by its already-coloured neighbours.
/// Uses at most `Δ+1` colours.
#[must_use]
pub fn greedy_coloring(g: &Graph) -> Vec<u32> {
    let n = g.node_count();
    let mut colors = vec![u32::MAX; n];
    let mut blocked = vec![false; g.max_degree() + 1];
    for v in g.nodes() {
        blocked.fill(false);
        for &u in g.neighbors(v) {
            let c = colors[u as usize];
            if c != u32::MAX {
                blocked[c as usize] = true;
            }
        }
        colors[v as usize] = blocked
            .iter()
            .position(|&b| !b)
            .expect("Δ+1 colours suffice") as u32;
    }
    colors
}

fn distinct_colors(colors: &[u32]) -> u32 {
    let mut seen: Vec<u32> = colors.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graph::generators;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn product_coloring_on_cycle() {
        let g = generators::cycle(10);
        let c = product_coloring(&g, &Algorithm::feedback(), 1).unwrap();
        assert!(check_coloring(&g, c.colors()).is_ok());
        assert!(c.color_count() <= 3);
        assert!(c.color_count() >= 2);
    }

    #[test]
    fn product_coloring_on_complete_graph_uses_all_colors() {
        let g = generators::complete(6);
        let c = product_coloring(&g, &Algorithm::feedback(), 2).unwrap();
        assert!(is_proper_coloring(&g, c.colors()));
        assert_eq!(c.color_count(), 6); // χ(K6) = 6 = Δ+1
    }

    #[test]
    fn product_coloring_on_random_graph() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = generators::gnp(30, 0.2, &mut rng);
        let c = product_coloring(&g, &Algorithm::feedback(), 9).unwrap();
        assert!(check_coloring(&g, c.colors()).is_ok());
        assert!(c.color_count() <= g.max_degree() as u32 + 1);
    }

    #[test]
    fn product_coloring_of_empty_graph() {
        let c = product_coloring(&Graph::empty(0), &Algorithm::feedback(), 0).unwrap();
        assert_eq!(c.color_count(), 0);
        assert_eq!(c.rounds(), 0);
        assert!(c.colors().is_empty());
    }

    #[test]
    fn product_coloring_of_edgeless_graph_is_monochromatic() {
        let g = Graph::empty(7);
        let c = product_coloring(&g, &Algorithm::feedback(), 3).unwrap();
        assert_eq!(c.color_count(), 1);
        assert!(c.colors().iter().all(|&x| x == 0));
    }

    #[test]
    fn small_palette_on_bipartite_graph_can_succeed() {
        // Even cycles are bipartite: k = 2 may succeed (maximality pressure
        // doesn't guarantee it, but the checker validates whenever it does).
        let g = generators::cycle(8);
        match product_coloring_with_colors(&g, 2, &Algorithm::feedback(), 4) {
            Ok(c) => {
                assert!(is_proper_coloring(&g, c.colors()));
                assert_eq!(c.color_count(), 2);
            }
            Err(ColoringError::PaletteExhausted { .. }) => {} // also legitimate
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn small_palette_on_complete_graph_is_exhausted() {
        let g = generators::complete(5);
        let err = product_coloring_with_colors(&g, 3, &Algorithm::feedback(), 6).unwrap_err();
        assert!(matches!(err, ColoringError::PaletteExhausted { .. }));
    }

    #[test]
    fn iterated_coloring_on_cycle() {
        let g = generators::cycle(11);
        let c = iterated_mis_coloring(&g, &Algorithm::feedback(), 7).unwrap();
        assert!(check_coloring(&g, c.colors()).is_ok());
        assert!(c.color_count() <= 3);
    }

    #[test]
    fn iterated_coloring_respects_delta_plus_one() {
        let mut rng = SmallRng::seed_from_u64(23);
        for trial in 0..5 {
            let g = generators::gnp(40, 0.15, &mut rng);
            let c = iterated_mis_coloring(&g, &Algorithm::feedback(), trial).unwrap();
            assert!(check_coloring(&g, c.colors()).is_ok());
            assert!(c.color_count() <= g.max_degree() as u32 + 1);
        }
    }

    #[test]
    fn iterated_coloring_of_complete_graph_uses_n_colors() {
        let g = generators::complete(7);
        let c = iterated_mis_coloring(&g, &Algorithm::feedback(), 1).unwrap();
        assert_eq!(c.color_count(), 7);
    }

    #[test]
    fn iterated_coloring_first_class_is_mis() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = generators::gnp(25, 0.3, &mut rng);
        let c = iterated_mis_coloring(&g, &Algorithm::feedback(), 12).unwrap();
        let class0 = c.class(0);
        assert!(mis_core::verify::is_maximal_independent_set(&g, &class0));
    }

    #[test]
    fn every_color_class_is_independent() {
        let mut rng = SmallRng::seed_from_u64(31);
        let g = generators::gnp(30, 0.25, &mut rng);
        let c = product_coloring(&g, &Algorithm::feedback(), 3).unwrap();
        for color in 0..c.color_count() {
            assert!(mis_core::verify::is_independent_set(&g, &c.class(color)));
        }
    }

    #[test]
    fn greedy_coloring_is_proper_and_bounded() {
        let mut rng = SmallRng::seed_from_u64(8);
        let g = generators::gnp(50, 0.2, &mut rng);
        let colors = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &colors));
        let max = colors.iter().max().copied().unwrap_or(0);
        assert!(max <= g.max_degree() as u32);
    }

    #[test]
    fn checker_rejects_monochromatic_edge() {
        let g = generators::path(2);
        assert_eq!(
            check_coloring(&g, &[0, 0]),
            Err(ColoringViolation::MonochromaticEdge { u: 0, v: 1 })
        );
    }

    #[test]
    fn checker_rejects_wrong_length() {
        let g = generators::path(3);
        assert_eq!(
            check_coloring(&g, &[0, 1]),
            Err(ColoringViolation::WrongLength {
                got: 2,
                expected: 3
            })
        );
    }

    #[test]
    fn coloring_error_display_and_source() {
        let err = ColoringError::PaletteExhausted { node: 4 };
        assert!(err.to_string().contains("4"));
        use std::error::Error as _;
        assert!(err.source().is_none());
        let solve = ColoringError::Solve(SolveError::RoundLimitReached { rounds: 10 });
        assert!(solve.source().is_some());
    }

    #[test]
    fn zero_palette_reports_exhaustion_not_panic() {
        let g = generators::path(3);
        let err = product_coloring_with_colors(&g, 0, &Algorithm::feedback(), 1).unwrap_err();
        assert!(matches!(err, ColoringError::PaletteExhausted { node: 0 }));
    }

    #[test]
    fn conflicting_colors_is_a_real_error() {
        // Product nodes 0 = (0, 0) and 1 = (0, 1) both colour node 0; the
        // decoder must reject this instead of silently overwriting.
        let err = decode_product_colors(2, 2, &[0, 1]).unwrap_err();
        assert_eq!(err, ColoringError::ConflictingColors { node: 0 });
        assert!(err.to_string().contains("two colours"));
        use std::error::Error as _;
        assert!(err.source().is_none());
    }

    #[test]
    fn phase_seeds_of_adjacent_caller_seeds_are_decorrelated() {
        // The old derivation (`seed + color`) made caller seeds s and s+1
        // replay each other's phase streams off by one; the mixed
        // derivation must give disjoint phase-seed sets.
        for s in [0u64, 7, 1 << 40] {
            // detlint: allow(D01) -- order-insensitive probe: only len() and is_disjoint()
            let a: std::collections::HashSet<u64> = (0..16).map(|c| trial_seed(s, c)).collect();
            // detlint: allow(D01) -- order-insensitive probe: only len() and is_disjoint()
            let b: std::collections::HashSet<u64> = (0..16).map(|c| trial_seed(s + 1, c)).collect();
            assert_eq!(a.len(), 16);
            assert!(a.is_disjoint(&b), "seed {s} phase streams overlap");
        }
    }

    #[test]
    fn iterated_rounds_accumulate_saturating() {
        // The accumulator clamps at u32::MAX instead of wrapping; pin the
        // idiom the implementation uses.
        let mut rounds = u32::MAX - 3;
        for phase_rounds in [2u32, 2, 2] {
            rounds = rounds.saturating_add(phase_rounds);
        }
        assert_eq!(rounds, u32::MAX);
    }

    #[test]
    fn coloring_is_deterministic_in_seed() {
        let mut rng = SmallRng::seed_from_u64(77);
        let g = generators::gnp(20, 0.3, &mut rng);
        let a = product_coloring(&g, &Algorithm::feedback(), 99).unwrap();
        let b = product_coloring(&g, &Algorithm::feedback(), 99).unwrap();
        assert_eq!(a, b);
    }
}
