//! The application execution engine: every reduction behind the unified
//! [`Engine`] batch path.
//!
//! [`AppEngine`] wraps one of the four applications — matching, product
//! colouring, dominating set, clusterhead election — as a
//! `mis_core::engine::Engine`, so application workloads run through exactly
//! the same deterministic, seed-ordered, work-stealing machinery as the
//! algorithm families (`RunPlan::for_engine(engine, runs).with_jobs(n)`),
//! with bit-identical records for any job count. The derived graph of each
//! reduction is a lazy view ([`LineGraphView`], [`ProductView`]) computed
//! from the base CSR — nothing is materialised per run.
//!
//! # Examples
//!
//! ```
//! use mis_apps::AppEngine;
//! use mis_core::{Algorithm, RunPlan};
//! use mis_graph::generators;
//!
//! let g = generators::grid2d(6, 6);
//! let engine = AppEngine::matching(Algorithm::feedback());
//! let report = RunPlan::for_engine(engine, 4)
//!     .with_master_seed(9)
//!     .with_jobs(2)
//!     .execute(&g);
//! assert_eq!(report.records().len(), 4);
//! assert_eq!(report.unterminated(), 0);
//! ```

use core::fmt;

use mis_beeping::SimConfig;
use mis_core::engine::{Engine, EngineRecord, RunView};
use mis_core::verify::check_mis;
use mis_core::{run_algorithm, Algorithm};
use mis_graph::{Graph, GraphView, LineGraphView, NodeId, ProductView};

use crate::clustering::Clustering;
use crate::coloring::{decode_product_colors, Coloring};
use crate::dominating::DominatingSet;
use crate::matching::Matching;

/// Which application an [`AppEngine`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AppKind {
    /// Maximal matching: MIS on the lazy line-graph view.
    Matching,
    /// `(Δ+1)`-colouring: MIS on the lazy `G □ K_{Δ+1}` product view.
    Coloring,
    /// Independent dominating set: MIS on the base graph, reinterpreted.
    Dominating,
    /// Clusterhead election: MIS heads plus one-hop affiliation.
    Clustering,
}

impl AppKind {
    /// Short name for tables and JSON records.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Matching => "matching",
            AppKind::Coloring => "coloring",
            AppKind::Dominating => "dominating",
            AppKind::Clustering => "clustering",
        }
    }
}

impl fmt::Display for AppKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The structure an application run produced, when it terminated and
/// verified.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AppResult {
    /// A verified maximal matching.
    Matching(Matching),
    /// A verified `(Δ+1)`-colouring.
    Coloring(Coloring),
    /// A verified independent dominating set.
    Dominating(DominatingSet),
    /// A verified one-hop clustering.
    Clustering(Clustering),
}

/// Full outcome of one [`AppEngine`] run: the derived-graph MIS, its cost
/// metrics, and the decoded application structure.
#[derive(Debug, Clone, PartialEq)]
pub struct AppOutcome {
    kind: AppKind,
    mis: Vec<NodeId>,
    rounds: u32,
    terminated: bool,
    mean_beeps_per_node: f64,
    mean_bits_per_channel: f64,
    result: Option<AppResult>,
}

impl AppOutcome {
    /// Which application produced this outcome.
    #[must_use]
    pub fn kind(&self) -> AppKind {
        self.kind
    }

    /// The decoded application structure (`None` when the run hit the
    /// round cap or — possible only under fault injection — failed
    /// verification).
    #[must_use]
    pub fn result(&self) -> Option<&AppResult> {
        self.result.as_ref()
    }

    /// The matching, for a [`AppKind::Matching`] engine.
    #[must_use]
    pub fn matching(&self) -> Option<&Matching> {
        match &self.result {
            Some(AppResult::Matching(m)) => Some(m),
            _ => None,
        }
    }

    /// The colouring, for a [`AppKind::Coloring`] engine.
    #[must_use]
    pub fn coloring(&self) -> Option<&Coloring> {
        match &self.result {
            Some(AppResult::Coloring(c)) => Some(c),
            _ => None,
        }
    }

    /// The dominating set, for a [`AppKind::Dominating`] engine.
    #[must_use]
    pub fn dominating(&self) -> Option<&DominatingSet> {
        match &self.result {
            Some(AppResult::Dominating(d)) => Some(d),
            _ => None,
        }
    }

    /// The clustering, for a [`AppKind::Clustering`] engine.
    #[must_use]
    pub fn clustering(&self) -> Option<&Clustering> {
        match &self.result {
            Some(AppResult::Clustering(c)) => Some(c),
            _ => None,
        }
    }

    /// The application's headline size: matched edges, colours used,
    /// dominators, or clusters (0 when the run failed).
    #[must_use]
    pub fn app_size(&self) -> usize {
        match &self.result {
            Some(AppResult::Matching(m)) => m.len(),
            Some(AppResult::Coloring(c)) => c.color_count() as usize,
            Some(AppResult::Dominating(d)) => d.len(),
            Some(AppResult::Clustering(c)) => c.cluster_count(),
            None => 0,
        }
    }

    /// Mean beeps per *derived-graph* node (per edge for matching, per
    /// product node for colouring).
    #[must_use]
    pub fn mean_beeps_per_node(&self) -> f64 {
        self.mean_beeps_per_node
    }

    /// Beeping rounds of the underlying MIS election (inherent mirror of
    /// [`RunView::rounds`] so callers need not import the trait).
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Whether the election terminated before the round cap (inherent
    /// mirror of [`RunView::terminated`]).
    #[must_use]
    pub fn terminated(&self) -> bool {
        self.terminated
    }
}

impl RunView for AppOutcome {
    fn mis(&self) -> Vec<NodeId> {
        self.mis.clone()
    }

    fn rounds(&self) -> u32 {
        self.rounds
    }

    fn terminated(&self) -> bool {
        self.terminated
    }
}

/// Compact per-run record an application batch keeps.
#[derive(Debug, Clone, PartialEq)]
pub struct AppRecord {
    /// The run's derived master seed (reproduces the run alone through
    /// [`Engine::run`]).
    pub seed: u64,
    /// Beeping rounds of the underlying MIS election.
    pub rounds: u32,
    /// Size of the derived-graph MIS.
    pub mis_size: usize,
    /// The application's headline size (matched edges, colours used,
    /// dominators, clusters).
    pub app_size: usize,
    /// Whether the election terminated (and, for terminated runs, decoded
    /// into a verified structure).
    pub terminated: bool,
    /// Mean beeps per derived-graph node.
    pub mean_beeps_per_node: f64,
    /// Mean bits per derived-graph channel.
    pub mean_bits_per_channel: f64,
}

impl EngineRecord for AppRecord {
    fn seed(&self) -> u64 {
        self.seed
    }

    fn rounds(&self) -> u32 {
        self.rounds
    }

    fn mis_size(&self) -> usize {
        self.mis_size
    }

    fn terminated(&self) -> bool {
        self.terminated
    }

    fn cost(&self) -> f64 {
        self.mean_beeps_per_node
    }

    fn bits_per_channel(&self) -> f64 {
        self.mean_bits_per_channel
    }
}

/// An application behind the unified [`Engine`] interface: a reduction
/// ([`AppKind`]), the MIS [`Algorithm`] driving it, and a shared
/// [`SimConfig`].
///
/// `run(graph, seed)` is a pure function of its arguments (the view is
/// rebuilt from the base CSR inside the call), so batches are bit-identical
/// for any `--jobs` value — the same contract every other engine obeys.
#[derive(Debug, Clone, PartialEq)]
pub struct AppEngine {
    /// The application every run executes.
    pub kind: AppKind,
    /// The MIS algorithm driving the reduction.
    pub algorithm: Algorithm,
    /// Simulator configuration shared by every run.
    pub config: SimConfig,
}

impl AppEngine {
    /// An engine for `kind` driven by `algorithm` with the default
    /// [`SimConfig`].
    #[must_use]
    pub fn new(kind: AppKind, algorithm: Algorithm) -> Self {
        Self {
            kind,
            algorithm,
            config: SimConfig::default(),
        }
    }

    /// A maximal-matching engine (MIS on the lazy line-graph view).
    #[must_use]
    pub fn matching(algorithm: Algorithm) -> Self {
        Self::new(AppKind::Matching, algorithm)
    }

    /// A `(Δ+1)`-colouring engine (MIS on the lazy product view).
    #[must_use]
    pub fn coloring(algorithm: Algorithm) -> Self {
        Self::new(AppKind::Coloring, algorithm)
    }

    /// An independent-dominating-set engine.
    #[must_use]
    pub fn dominating(algorithm: Algorithm) -> Self {
        Self::new(AppKind::Dominating, algorithm)
    }

    /// A clusterhead-election engine.
    #[must_use]
    pub fn clustering(algorithm: Algorithm) -> Self {
        Self::new(AppKind::Clustering, algorithm)
    }

    /// Replaces the simulator configuration.
    #[must_use]
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the MIS election on `view` and gathers the engine-level
    /// quantities; `valid` is true exactly when the run terminated *and*
    /// the selected set verified as an MIS of the view.
    fn elect<G: GraphView + ?Sized>(&self, view: &G, seed: u64) -> (AppOutcome, bool) {
        let outcome = run_algorithm(view, &self.algorithm, seed, self.config.clone());
        let mis = outcome.mis();
        let terminated = outcome.terminated();
        let valid = terminated && check_mis(view, &mis).is_ok();
        let out = AppOutcome {
            kind: self.kind,
            rounds: outcome.rounds(),
            terminated,
            mean_beeps_per_node: outcome.metrics().mean_beeps_per_node(),
            mean_bits_per_channel: outcome.metrics().mean_channel_bits(view),
            mis,
            result: None,
        };
        (out, valid)
    }
}

impl Engine for AppEngine {
    type Outcome = AppOutcome;
    type Record = AppRecord;

    fn run(&self, graph: &Graph, seed: u64) -> AppOutcome {
        match self.kind {
            AppKind::Matching => {
                let view = LineGraphView::new(graph);
                let (mut out, valid) = self.elect(&view, seed);
                if valid {
                    out.result = Some(AppResult::Matching(Matching::from_line_mis(
                        &view,
                        &out.mis,
                        out.rounds,
                        out.mean_beeps_per_node,
                    )));
                }
                out
            }
            AppKind::Coloring => {
                let k = graph.max_degree() as u32 + 1;
                let view = ProductView::new(graph, k);
                let (mut out, valid) = self.elect(&view, seed);
                if valid {
                    // A verified MIS of G □ K_{Δ+1} always decodes: the
                    // palette cannot be exhausted and colours cannot
                    // conflict. Decode errors are therefore unreachable
                    // here, but surfacing them as a missing result (rather
                    // than panicking) keeps the engine total.
                    out.result = decode_product_colors(graph.node_count(), k, &out.mis)
                        .ok()
                        .map(|(colors, count)| {
                            AppResult::Coloring(Coloring::from_parts(colors, count, out.rounds))
                        });
                }
                out
            }
            AppKind::Dominating => {
                let (mut out, valid) = self.elect(graph, seed);
                if valid {
                    out.result = Some(AppResult::Dominating(DominatingSet::from_mis(
                        out.mis.clone(),
                        out.rounds,
                    )));
                }
                out
            }
            AppKind::Clustering => {
                let (mut out, valid) = self.elect(graph, seed);
                if valid {
                    out.result = Some(AppResult::Clustering(Clustering::from_heads(
                        graph,
                        out.mis.clone(),
                        out.rounds,
                    )));
                }
                out
            }
        }
    }

    fn record(&self, _graph: &Graph, seed: u64, outcome: &AppOutcome) -> AppRecord {
        AppRecord {
            seed,
            rounds: outcome.rounds,
            mis_size: outcome.mis.len(),
            app_size: outcome.app_size(),
            terminated: outcome.terminated && outcome.result.is_some(),
            mean_beeps_per_node: outcome.mean_beeps_per_node,
            mean_bits_per_channel: outcome.mean_bits_per_channel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::check_coloring;
    use crate::matching::check_matching;
    use mis_core::RunPlan;
    use mis_graph::generators;
    use rand::{rngs::SmallRng, SeedableRng};

    fn engines() -> Vec<AppEngine> {
        vec![
            AppEngine::matching(Algorithm::feedback()),
            AppEngine::coloring(Algorithm::feedback()),
            AppEngine::dominating(Algorithm::feedback()),
            AppEngine::clustering(Algorithm::feedback()),
        ]
    }

    #[test]
    fn engine_outcomes_decode_verified_structures() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generators::gnp(30, 0.2, &mut rng);
        for engine in engines() {
            let out = engine.run(&g, 11);
            assert!(out.terminated(), "{}", engine.kind);
            assert!(out.result().is_some(), "{}", engine.kind);
            assert_eq!(out.kind(), engine.kind);
            match out.result().unwrap() {
                AppResult::Matching(m) => assert!(check_matching(&g, m.edges()).is_ok()),
                AppResult::Coloring(c) => assert!(check_coloring(&g, c.colors()).is_ok()),
                AppResult::Dominating(d) => {
                    assert!(crate::dominating::is_dominating_set(&g, d.nodes()));
                }
                AppResult::Clustering(c) => {
                    assert!(crate::clustering::check_clustering(&g, c).is_ok());
                }
            }
        }
    }

    #[test]
    fn engine_matches_the_one_shot_constructors() {
        let g = generators::grid2d(5, 5);
        let seed = 21;

        let m = AppEngine::matching(Algorithm::feedback()).run(&g, seed);
        let direct = crate::matching::maximal_matching(&g, &Algorithm::feedback(), seed).unwrap();
        assert_eq!(m.matching().unwrap(), &direct);

        let c = AppEngine::coloring(Algorithm::feedback()).run(&g, seed);
        let direct = crate::coloring::product_coloring(&g, &Algorithm::feedback(), seed).unwrap();
        assert_eq!(c.coloring().unwrap(), &direct);

        let d = AppEngine::dominating(Algorithm::feedback()).run(&g, seed);
        let direct =
            crate::dominating::dominating_set_via_mis(&g, &Algorithm::feedback(), seed).unwrap();
        assert_eq!(d.dominating().unwrap(), &direct);

        let cl = AppEngine::clustering(Algorithm::feedback()).run(&g, seed);
        let direct = crate::clustering::cluster_via_mis(&g, &Algorithm::feedback(), seed).unwrap();
        assert_eq!(cl.clustering().unwrap(), &direct);
    }

    #[test]
    fn batch_records_are_job_count_invariant() {
        let mut rng = SmallRng::seed_from_u64(8);
        let g = generators::gnp(25, 0.25, &mut rng);
        for engine in engines() {
            let kind = engine.kind;
            let base = RunPlan::for_engine(engine, 6).with_master_seed(5);
            let solo = base.clone().with_jobs(1).execute(&g);
            for jobs in [2, 4] {
                let parallel = base.clone().with_jobs(jobs).execute(&g);
                assert_eq!(parallel, solo, "{kind} at jobs = {jobs}");
            }
            assert_eq!(solo.unterminated(), 0, "{kind}");
        }
    }

    #[test]
    fn records_reduce_the_outcome() {
        let g = generators::cycle(16);
        let engine = AppEngine::matching(Algorithm::sweep());
        let out = engine.run(&g, 2);
        let record = engine.record(&g, 2, &out);
        assert_eq!(record.seed, 2);
        assert_eq!(record.rounds, out.rounds());
        assert_eq!(record.mis_size, RunView::mis(&out).len());
        assert_eq!(record.app_size, out.app_size());
        assert!(record.terminated);
        assert_eq!(EngineRecord::cost(&record), out.mean_beeps_per_node());
        assert!(EngineRecord::bits_per_channel(&record) > 0.0);
    }

    #[test]
    fn empty_graph_runs_trivially_for_every_kind() {
        let g = mis_graph::Graph::empty(0);
        for engine in engines() {
            let out = engine.run(&g, 0);
            assert!(out.terminated(), "{}", engine.kind);
            assert_eq!(out.rounds(), 0);
            assert_eq!(out.app_size(), 0);
            assert!(out.result().is_some());
        }
    }

    #[test]
    fn round_cap_yields_no_result() {
        // Constant p = 1 never terminates on K2's line graph (a single
        // node would instantly win; use the triangle so L(G) = K3).
        let g = generators::complete(3);
        let engine = AppEngine::matching(Algorithm::constant(1.0))
            .with_config(SimConfig::default().with_max_rounds(5));
        let out = engine.run(&g, 1);
        assert!(!out.terminated());
        assert!(out.result().is_none());
        assert_eq!(out.app_size(), 0);
        let record = engine.record(&g, 1, &out);
        assert!(!record.terminated);
    }

    #[test]
    fn kind_names_and_display() {
        assert_eq!(AppKind::Matching.name(), "matching");
        assert_eq!(AppKind::Coloring.to_string(), "coloring");
        assert_eq!(AppKind::Dominating.name(), "dominating");
        assert_eq!(AppKind::Clustering.to_string(), "clustering");
    }
}
