//! Compact undirected graph substrate for the `beeping-mis` workspace.
//!
//! This crate provides the network topologies on which the distributed MIS
//! algorithms of Scott, Jeavons & Xu (PODC 2013) and their baselines run:
//!
//! * [`Graph`] — an immutable, CSR-backed simple undirected graph with
//!   sorted adjacency lists (O(1) degree, O(log d) adjacency tests);
//! * [`GraphBuilder`] — incremental, validated construction;
//! * [`generators`] — every graph family used in the paper's experiments:
//!   Erdős–Rényi `G(n, p)` (Figures 3 and 5), rectangular grids (§5), the
//!   Theorem 1 clique-union lower-bound family, plus hexagonal lattices
//!   (the fly epithelium), random geometric graphs (sensor networks),
//!   trees, regular graphs, hypercubes and the classic fixed topologies;
//! * [`ops`] — connected components, induced subgraphs, disjoint unions,
//!   complements and degree statistics;
//! * [`view`] — the [`GraphView`] adjacency trait plus lazy derived-graph
//!   adapters ([`LineGraphView`], [`ProductView`], [`InducedView`]) that the
//!   simulator can run on without materialising the derived graph;
//! * [`io`] — an edge-list text format and Graphviz DOT export;
//! * [`compressed`] / [`stream`] — the scale tier: a delta-varint
//!   [`CompressedGraph`] backend, streaming shard generation in bounded
//!   memory, and the paged [`DiskGraph`] reader for graphs larger than RAM.
//!
//! # Examples
//!
//! ```
//! use mis_graph::{generators, Graph};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let g: Graph = generators::gnp(20, 0.5, &mut rng);
//! assert_eq!(g.node_count(), 20);
//! for v in g.nodes() {
//!     for &u in g.neighbors(v) {
//!         assert!(g.has_edge(u, v));
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod compressed;
mod error;
pub mod generators;
mod graph;
pub mod io;
pub mod ops;
pub mod stream;
pub mod view;

pub use builder::GraphBuilder;
pub use compressed::{CompressedGraph, CompressedGraphBuilder};
pub use error::GraphError;
pub use graph::{EdgeIter, Graph, NodeIter};
pub use stream::{DiskGraph, ShardWriter, ShardedGraphSummary, StreamError};
pub use view::{GraphView, InducedView, LineGraphView, ProductView};

/// Index of a node in a [`Graph`].
///
/// Nodes of a graph with `n` vertices are exactly `0..n`. A plain `u32`
/// (rather than a newtype) keeps the inner simulation loops free of
/// conversions; all public APIs validate indices and document their panics.
pub type NodeId = u32;
