//! Error type for graph construction and parsing.

use core::fmt;

use crate::NodeId;

/// Errors produced when building or parsing a [`Graph`](crate::Graph).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge `(v, v)` was supplied; simple graphs have no self-loops.
    SelfLoop {
        /// The offending node.
        node: NodeId,
    },
    /// An endpoint exceeds the declared node count.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The declared number of nodes.
        node_count: usize,
    },
    /// More nodes were requested than the `u32` index space allows.
    TooManyNodes {
        /// The requested number of nodes.
        requested: usize,
    },
    /// A line of edge-list input could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// A DIMACS header declared an edge count that does not match the
    /// deduplicated edge count of the instance (strict parsing only; see
    /// [`io::parse_dimacs_strict`](crate::io::parse_dimacs_strict)).
    EdgeCountMismatch {
        /// The `m` the `p edge n m` problem line declared.
        declared: usize,
        /// The number of distinct edges the instance actually contains.
        found: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop { node } => {
                write!(
                    f,
                    "self-loop at node {node} is not allowed in a simple graph"
                )
            }
            GraphError::NodeOutOfRange { node, node_count } => write!(
                f,
                "node {node} out of range for graph with {node_count} nodes"
            ),
            GraphError::TooManyNodes { requested } => write!(
                f,
                "requested {requested} nodes, which exceeds the u32 index space"
            ),
            GraphError::Parse { line, reason } => {
                write!(f, "parse error on line {line}: {reason}")
            }
            GraphError::EdgeCountMismatch { declared, found } => write!(
                f,
                "header declares {declared} edges but the instance has {found} distinct edges"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::SelfLoop { node: 3 };
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::NodeOutOfRange {
            node: 9,
            node_count: 5,
        };
        assert!(e.to_string().contains("out of range"));
        let e = GraphError::TooManyNodes { requested: 1 << 40 };
        assert!(e.to_string().contains("u32"));
        let e = GraphError::Parse {
            line: 2,
            reason: "bad token".into(),
        };
        assert!(e.to_string().contains("line 2"));
        let e = GraphError::EdgeCountMismatch {
            declared: 5,
            found: 3,
        };
        assert!(e.to_string().contains('5') && e.to_string().contains('3'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<GraphError>();
    }
}
