//! Incremental, validated graph construction.

use crate::{Graph, GraphError, NodeId};

/// Builder for [`Graph`] values.
///
/// Use this when edges are discovered incrementally (parsers, generators
/// with rejection steps). Edges are validated eagerly so errors point at the
/// offending insertion; duplicates are merged at [`build`](Self::build) time.
///
/// # Examples
///
/// ```
/// use mis_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// b.add_edge(2, 1)?; // duplicate orientation, merged
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), mis_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    node_count: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `node_count` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` exceeds the `u32` index space.
    #[must_use]
    pub fn new(node_count: usize) -> Self {
        assert!(
            node_count <= u32::MAX as usize,
            "node count exceeds u32 index space"
        );
        Self {
            node_count,
            edges: Vec::new(),
        }
    }

    /// Number of nodes the built graph will have.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edge insertions so far (duplicates not yet merged).
    #[must_use]
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Pre-allocates room for `additional` more edges.
    pub fn reserve(&mut self, additional: usize) -> &mut Self {
        self.edges.reserve(additional);
        self
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `u == v` and
    /// [`GraphError::NodeOutOfRange`] if either endpoint is `≥ node_count`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<&mut Self, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        for w in [u, v] {
            if w as usize >= self.node_count {
                return Err(GraphError::NodeOutOfRange {
                    node: w,
                    node_count: self.node_count,
                });
            }
        }
        self.edges.push((u.min(v), u.max(v)));
        Ok(self)
    }

    /// Adds an edge that the caller guarantees to be valid and canonical
    /// (`u < v`, both in range). Generators that produce edges in canonical
    /// order use this to skip re-validation.
    ///
    /// # Panics
    ///
    /// Debug builds assert the preconditions.
    pub fn add_canonical_edge_unchecked(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        debug_assert!(u < v, "edge must be canonical (u < v)");
        debug_assert!((v as usize) < self.node_count, "endpoint out of range");
        self.edges.push((u, v));
        self
    }

    /// Finishes construction, merging duplicate edges.
    #[must_use]
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        Graph::from_sorted_dedup_edges(self.node_count, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_expected_graph() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(3, 2).unwrap();
        assert_eq!(b.node_count(), 4);
        assert_eq!(b.pending_edges(), 2);
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(2, 3));
    }

    #[test]
    fn rejects_self_loop_eagerly() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.add_edge(1, 1).unwrap_err(),
            GraphError::SelfLoop { node: 1 }
        );
    }

    #[test]
    fn rejects_out_of_range_eagerly() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(0, 2).unwrap_err(),
            GraphError::NodeOutOfRange { node: 2, .. }
        ));
    }

    #[test]
    fn duplicates_merge_on_build() {
        let mut b = GraphBuilder::new(3);
        for _ in 0..5 {
            b.add_edge(0, 2).unwrap();
            b.add_edge(2, 0).unwrap();
        }
        assert_eq!(b.build().edge_count(), 1);
    }

    #[test]
    fn unchecked_canonical_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_canonical_edge_unchecked(0, 1)
            .add_canonical_edge_unchecked(1, 2);
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(7).build();
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn chaining_works() {
        let mut b = GraphBuilder::new(3);
        b.reserve(2).add_edge(0, 1).unwrap().add_edge(1, 2).unwrap();
        assert_eq!(b.build().edge_count(), 2);
    }
}
