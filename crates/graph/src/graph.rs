//! The core CSR graph type.

use core::fmt;

use crate::{GraphError, NodeId};

/// An immutable simple undirected graph in compressed sparse row form.
///
/// Neighbour lists are sorted, enabling `O(log d)` adjacency queries and
/// cache-friendly iteration — the inner loop of every simulator round walks
/// these lists. Construction validates that the graph is simple (no
/// self-loops, no parallel edges).
///
/// # Examples
///
/// ```
/// use mis_graph::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 3);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(2, 1));
/// assert!(!g.has_edge(0, 3));
/// # Ok::<(), mis_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` indexes `adjacency` for node `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbour lists.
    adjacency: Vec<NodeId>,
    /// Number of undirected edges.
    edge_count: usize,
}

impl Graph {
    /// Builds a graph with `node_count` nodes from an iterator of edges.
    ///
    /// Edges may appear in any orientation and duplicates are merged, so
    /// `(0, 1)` and `(1, 0)` describe the same single edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] for an edge `(v, v)`,
    /// [`GraphError::NodeOutOfRange`] for an endpoint `≥ node_count`, and
    /// [`GraphError::TooManyNodes`] if `node_count` exceeds `u32::MAX`.
    pub fn from_edges<I>(node_count: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        if node_count > u32::MAX as usize {
            return Err(GraphError::TooManyNodes {
                requested: node_count,
            });
        }
        let mut normalized: Vec<(NodeId, NodeId)> = Vec::new();
        for (u, v) in edges {
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
            for w in [u, v] {
                if w as usize >= node_count {
                    return Err(GraphError::NodeOutOfRange {
                        node: w,
                        node_count,
                    });
                }
            }
            normalized.push((u.min(v), u.max(v)));
        }
        normalized.sort_unstable();
        normalized.dedup();
        Ok(Self::from_sorted_dedup_edges(node_count, &normalized))
    }

    /// Builds a graph from edges already normalised (`u < v`), sorted and
    /// deduplicated. Used internally by generators that construct edges in
    /// canonical order and by [`GraphBuilder`](crate::GraphBuilder).
    pub(crate) fn from_sorted_dedup_edges(node_count: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut degrees = vec![0usize; node_count];
        for &(u, v) in edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(node_count + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adjacency = vec![0 as NodeId; acc];
        for &(u, v) in edges {
            adjacency[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adjacency[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each node's slice is filled in increasing order of the *other*
        // endpoint only for the first endpoint; sort every list to restore
        // the invariant for both directions.
        for v in 0..node_count {
            adjacency[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Self {
            offsets,
            adjacency,
            edge_count: edges.len(),
        }
    }

    /// A graph with `node_count` nodes and no edges.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` exceeds the `u32` index space.
    #[must_use]
    pub fn empty(node_count: usize) -> Self {
        assert!(
            node_count <= u32::MAX as usize,
            "node count exceeds u32 index space"
        );
        Self {
            offsets: vec![0; node_count + 1],
            adjacency: Vec::new(),
            edge_count: 0,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbour list of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.adjacency[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether nodes `u` and `v` are adjacent.
    ///
    /// Runs in `O(log min(deg u, deg v))`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    #[must_use]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all node ids `0..n`.
    #[must_use]
    pub fn nodes(&self) -> NodeIter {
        NodeIter {
            range: 0..self.node_count() as NodeId,
        }
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`.
    #[must_use]
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            graph: self,
            node: 0,
            pos: 0,
        }
    }

    /// Maximum degree Δ (0 for the empty graph).
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree δ (0 for the empty graph).
    #[must_use]
    pub fn min_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Heap bytes held by the CSR adjacency structure (offset array plus
    /// neighbour array) — the denominator of the scale tier's
    /// bytes-per-node comparisons against
    /// [`CompressedGraph`](crate::CompressedGraph).
    #[must_use]
    pub fn adjacency_bytes(&self) -> usize {
        self.adjacency.len() * core::mem::size_of::<NodeId>()
            + self.offsets.len() * core::mem::size_of::<usize>()
    }

    /// Mean degree `2m / n` (0 for the empty graph).
    #[must_use]
    pub fn mean_degree(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.node_count() as f64
        }
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count)
            .field("max_degree", &self.max_degree())
            .finish()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph with {} nodes, {} edges",
            self.node_count(),
            self.edge_count
        )
    }
}

/// Iterator over node ids, returned by [`Graph::nodes`].
#[derive(Debug, Clone)]
pub struct NodeIter {
    range: core::ops::Range<NodeId>,
}

impl Iterator for NodeIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        self.range.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for NodeIter {}

/// Iterator over undirected edges `(u, v)` with `u < v`, returned by
/// [`Graph::edges`].
#[derive(Debug, Clone)]
pub struct EdgeIter<'a> {
    graph: &'a Graph,
    node: NodeId,
    pos: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        let n = self.graph.node_count() as NodeId;
        while self.node < n {
            let nbrs = self.graph.neighbors(self.node);
            while self.pos < nbrs.len() {
                let v = nbrs[self.pos];
                self.pos += 1;
                if self.node < v {
                    return Some((self.node, v));
                }
            }
            self.node += 1;
            self.pos = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> Graph {
        // 0-1, 1-2, 2-0 triangle with pendant 3 attached to 0.
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (0, 3)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle_plus_pendant();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
        assert!((g.mean_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = triangle_plus_pendant();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(g.has_edge(u, v), g.has_edge(v, u));
            }
        }
        assert!(!g.has_edge(1, 1));
        assert!(!g.has_edge(1, 3));
    }

    #[test]
    fn duplicate_and_reversed_edges_merge() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1), (2, 1)]).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn self_loop_rejected() {
        let err = Graph::from_edges(3, [(1, 1)]).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: 1 });
    }

    #[test]
    fn out_of_range_rejected() {
        let err = Graph::from_edges(2, [(0, 5)]).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 5, .. }));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
        let g0 = Graph::empty(0);
        assert!(g0.is_empty());
        assert_eq!(g0.mean_degree(), 0.0);
    }

    #[test]
    fn edges_iterator_yields_canonical_pairs_once() {
        let g = triangle_plus_pendant();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (0, 3), (1, 2)]);
    }

    #[test]
    fn nodes_iterator_is_exact_size() {
        let g = triangle_plus_pendant();
        let it = g.nodes();
        assert_eq!(it.len(), 4);
        assert_eq!(it.collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn adjacency_lists_are_sorted() {
        let g = Graph::from_edges(6, [(5, 0), (3, 0), (1, 0), (4, 0), (2, 0)]).unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        let g = triangle_plus_pendant();
        assert!(format!("{g:?}").contains("Graph"));
        assert!(format!("{g}").contains("4 nodes"));
    }
}
