//! Implicit graph views: adjacency computed on the fly, never materialised.
//!
//! The classical MIS reductions ([`ops::line_graph`](crate::ops::line_graph),
//! [`ops::cartesian_product`](crate::ops::cartesian_product), per-phase
//! [`ops::induced_subgraph`](crate::ops::induced_subgraph)) all
//! *materialise* their derived graph
//! before the simulator starts — for a matching run on `G(10k, d≈64)` that
//! means building a ~320k-node line graph whose adjacency arrays dwarf the
//! base CSR by the mean degree. The [`GraphView`] trait lets the beeping
//! simulator and `mis-core`'s solve path run directly on **lazy adapters**
//! instead:
//!
//! * [`LineGraphView`] — `L(G)`, one node per edge of the base graph;
//! * [`ProductView`] — `G □ K_k`, the Luby colouring reduction;
//! * [`InducedView`] — the subgraph induced by a sorted node selection.
//!
//! Each adapter stores only `O(n + m)` indexing state over the borrowed base
//! CSR (never the derived adjacency, which is `O(Σ deg²)` for the line
//! graph) and computes neighbour lists on demand, in the exact order the
//! materialised [`ops`](crate::ops) constructions would store them.
//!
//! # The adjacency contract
//!
//! Implementations must describe a *simple undirected* graph and visit each
//! node's neighbours in **strictly ascending id order, without duplicates or
//! self-loops**, symmetrically (`u ∈ N(v) ⟺ v ∈ N(u)`). [`Graph`] satisfies
//! this by its CSR invariant; the adapters preserve it structurally. The
//! simulator's bitset propagation kernel exploits the ordering to fold
//! word-grouped neighbour masks.
//!
//! # Examples
//!
//! ```
//! use mis_graph::{generators, ops, GraphView, LineGraphView};
//!
//! let g = generators::path(4); // edges 0-1, 1-2, 2-3
//! let view = LineGraphView::new(&g);
//! let (materialized, edges) = ops::line_graph(&g);
//! assert_eq!(view.node_count(), materialized.node_count());
//! assert_eq!(view.edges(), &edges[..]);
//! for v in 0..view.node_count() as u32 {
//!     assert_eq!(view.neighbors_vec(v), materialized.neighbors(v));
//! }
//! ```

use core::ops::ControlFlow;

use crate::{Graph, NodeId};

/// Read-only adjacency interface shared by [`Graph`] and the lazy views.
///
/// The beeping simulator's propagation kernels, the message-passing
/// runtime of `mis-baselines`, and `mis-core`'s solve/verify path are all
/// generic over this trait, so a derived graph never has to be
/// materialised to be *simulated*. See the [module docs](self) for the
/// adjacency contract implementations must uphold.
///
/// # Examples
///
/// Code written against the trait runs identically on a CSR graph and on
/// any lazy adapter:
///
/// ```
/// use mis_graph::{generators, GraphView, ProductView};
///
/// fn isolated_nodes<G: GraphView + ?Sized>(g: &G) -> usize {
///     (0..g.node_count() as u32).filter(|&v| g.degree(v) == 0).count()
/// }
///
/// let g = generators::path(3);
/// assert_eq!(isolated_nodes(&g), 0);
/// let product = ProductView::new(&g, 2); // P₃ □ K₂: still no isolates
/// assert_eq!(isolated_nodes(&product), 0);
/// assert_eq!(product.max_degree(), g.max_degree() + 1);
/// ```
pub trait GraphView: Sync {
    /// Number of nodes; valid ids are exactly `0..node_count()`.
    fn node_count(&self) -> usize;

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    fn degree(&self, v: NodeId) -> usize;

    /// Visits the neighbours of `v` in strictly ascending id order until
    /// `f` breaks or the list is exhausted. Returns whatever the last call
    /// to `f` returned (`Continue` for an exhausted or empty list).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    fn try_for_each_neighbor<F>(&self, v: NodeId, f: F) -> ControlFlow<()>
    where
        F: FnMut(NodeId) -> ControlFlow<()>;

    /// Visits every neighbour of `v` in ascending id order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    fn for_each_neighbor<F>(&self, v: NodeId, mut f: F)
    where
        F: FnMut(NodeId),
    {
        let _ = self.try_for_each_neighbor(v, |u| {
            f(u);
            ControlFlow::Continue(())
        });
    }

    /// The neighbours of `v` collected into a vector (ascending).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    fn neighbors_vec(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.degree(v));
        self.for_each_neighbor(v, |u| out.push(u));
        out
    }

    /// Whether the view has no nodes.
    fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// Number of undirected edges (`Σ deg / 2` by default).
    fn edge_count(&self) -> usize {
        let total: usize = (0..self.node_count() as NodeId)
            .map(|v| self.degree(v))
            .sum();
        total / 2
    }

    /// Maximum degree Δ (0 for the empty view).
    fn max_degree(&self) -> usize {
        (0..self.node_count() as NodeId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Whether `u` and `v` are adjacent (linear scan with early exit over
    /// the lower-degree endpoint's ascending neighbour list).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let mut found = false;
        let _ = self.try_for_each_neighbor(a, |w| {
            if w >= b {
                found = w == b;
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        found
    }

    /// Materialises the view into a CSR [`Graph`] — the equivalence anchor
    /// for tests and benchmarks, **not** something the simulation path ever
    /// needs.
    fn materialize(&self) -> Graph {
        let n = self.node_count();
        let mut edges = Vec::with_capacity(self.edge_count());
        for v in 0..n as NodeId {
            self.for_each_neighbor(v, |u| {
                if v < u {
                    edges.push((v, u));
                }
            });
        }
        Graph::from_edges(n, edges).expect("a GraphView describes a valid simple graph")
    }
}

impl GraphView for Graph {
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    fn degree(&self, v: NodeId) -> usize {
        Graph::degree(self, v)
    }

    fn try_for_each_neighbor<F>(&self, v: NodeId, mut f: F) -> ControlFlow<()>
    where
        F: FnMut(NodeId) -> ControlFlow<()>,
    {
        for &u in self.neighbors(v) {
            f(u)?;
        }
        ControlFlow::Continue(())
    }

    fn is_empty(&self) -> bool {
        Graph::is_empty(self)
    }

    fn edge_count(&self) -> usize {
        Graph::edge_count(self)
    }

    fn max_degree(&self) -> usize {
        Graph::max_degree(self)
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        Graph::has_edge(self, u, v)
    }
}

/// The line graph `L(G)` as a lazy view: node `i` is edge `edges()[i]` of
/// the base graph (in [`Graph::edges`] order, matching
/// [`ops::line_graph`](crate::ops::line_graph)), and two nodes are adjacent
/// exactly when the corresponding base edges share an endpoint.
///
/// Stores `O(m)` indexing state (the canonical edge list plus one edge id
/// per CSR half-edge) instead of the `O(Σ deg²)` materialised line-graph
/// adjacency — on a mean-degree-`d` base graph that is a factor-`≈d/2`
/// memory saving, and construction is a single `O(m log d)` pass.
///
/// # Examples
///
/// ```
/// use mis_graph::{generators, GraphView, LineGraphView};
///
/// let g = generators::star(5); // all 4 edges share the hub
/// let lg = LineGraphView::new(&g);
/// assert_eq!(lg.node_count(), 4);
/// assert_eq!(lg.edge_count(), 6); // K4
/// assert_eq!(lg.edge_of(0), (0, 1));
/// ```
#[derive(Debug, Clone)]
pub struct LineGraphView<'g> {
    base: &'g Graph,
    /// Canonical edge list: line-graph node `i` is `edges[i] = (u, v)`,
    /// `u < v`, in [`Graph::edges`] order.
    edges: Vec<(NodeId, NodeId)>,
    /// CSR offsets of the base graph (recomputed from degrees; the base's
    /// own offsets are private to its module).
    offsets: Vec<usize>,
    /// For each base half-edge position `offsets[v] + j` (the `j`-th
    /// neighbour of `v`), the line-graph node id of that edge. Along one
    /// node's slice these ids are strictly ascending, which is what lets
    /// neighbour iteration merge two sorted runs.
    edge_ids: Vec<u32>,
}

impl<'g> LineGraphView<'g> {
    /// Builds the view over `base`.
    ///
    /// # Panics
    ///
    /// Panics if the base graph has more edges than the `u32` node-id
    /// space of the line graph allows.
    #[must_use]
    pub fn new(base: &'g Graph) -> Self {
        assert!(
            base.edge_count() <= u32::MAX as usize,
            "line graph would exceed the u32 node-id space"
        );
        let n = base.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for v in 0..n {
            offsets.push(offsets[v] + Graph::degree(base, v as NodeId));
        }
        let mut edge_ids = vec![0u32; offsets[n]];
        let mut edges = Vec::with_capacity(base.edge_count());
        for v in base.nodes() {
            for (j, &u) in base.neighbors(v).iter().enumerate() {
                if v < u {
                    let id = u32::try_from(edges.len()).expect("edge id overflows u32");
                    edges.push((v, u));
                    edge_ids[offsets[v as usize] + j] = id;
                    let k = base
                        .neighbors(u)
                        .binary_search(&v)
                        .expect("CSR adjacency is symmetric");
                    edge_ids[offsets[u as usize] + k] = id;
                }
            }
        }
        Self {
            base,
            edges,
            offsets,
            edge_ids,
        }
    }

    /// The base graph the view borrows.
    #[must_use]
    pub fn base(&self) -> &'g Graph {
        self.base
    }

    /// The canonical edge list defining the node numbering — identical to
    /// the second component of [`ops::line_graph`](crate::ops::line_graph).
    #[must_use]
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// The base edge `(u, v)` (with `u < v`) that line-graph node `i`
    /// stands for.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn edge_of(&self, i: NodeId) -> (NodeId, NodeId) {
        self.edges[i as usize]
    }

    /// The edge ids incident to base node `v`, ascending.
    fn incident(&self, v: NodeId) -> &[u32] {
        &self.edge_ids[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }
}

impl GraphView for LineGraphView<'_> {
    fn node_count(&self) -> usize {
        self.edges.len()
    }

    fn degree(&self, i: NodeId) -> usize {
        let (u, v) = self.edges[i as usize];
        // Edges sharing u (other than this one) plus edges sharing v; a
        // simple base graph has no second edge sharing both endpoints.
        Graph::degree(self.base, u) + Graph::degree(self.base, v) - 2
    }

    fn try_for_each_neighbor<F>(&self, i: NodeId, mut f: F) -> ControlFlow<()>
    where
        F: FnMut(NodeId) -> ControlFlow<()>,
    {
        let (u, v) = self.edges[i as usize];
        // Each incident list is ascending in edge id; merge the two runs,
        // skipping this edge itself (the only id the runs share).
        let a = self.incident(u);
        let b = self.incident(v);
        let (mut ia, mut ib) = (0usize, 0usize);
        loop {
            while ia < a.len() && a[ia] == i {
                ia += 1;
            }
            while ib < b.len() && b[ib] == i {
                ib += 1;
            }
            match (a.get(ia), b.get(ib)) {
                (Some(&x), Some(&y)) => {
                    if x < y {
                        f(x)?;
                        ia += 1;
                    } else {
                        f(y)?;
                        ib += 1;
                    }
                }
                (Some(&x), None) => {
                    f(x)?;
                    ia += 1;
                }
                (None, Some(&y)) => {
                    f(y)?;
                    ib += 1;
                }
                (None, None) => return ControlFlow::Continue(()),
            }
        }
    }

    fn edge_count(&self) -> usize {
        // |E(L(G))| = Σ_v C(deg v, 2).
        self.base
            .nodes()
            .map(|v| {
                let d = Graph::degree(self.base, v);
                d * d.saturating_sub(1) / 2
            })
            .sum()
    }

    fn max_degree(&self) -> usize {
        self.edges
            .iter()
            .map(|&(u, v)| Graph::degree(self.base, u) + Graph::degree(self.base, v) - 2)
            .max()
            .unwrap_or(0)
    }
}

/// The cartesian product `G □ K_k` as a lazy view — the Luby reduction
/// from `(Δ+1)`-colouring to MIS, with **no** product graph materialised.
///
/// Node `(u, c)` is numbered `u·k + c`, matching
/// [`ops::cartesian_product`](crate::ops::cartesian_product) with a
/// complete palette graph. Neighbours of `(u, c)` are the other colours of
/// `u` plus `(w, c)` for every base neighbour `w`. The view stores nothing
/// beyond the base borrow and `k`.
///
/// # Examples
///
/// ```
/// use mis_graph::{generators, ops, GraphView, ProductView};
///
/// let g = generators::cycle(5);
/// let view = ProductView::new(&g, 3);
/// let materialized = ops::cartesian_product(&g, &generators::complete(3));
/// assert_eq!(view.node_count(), materialized.node_count());
/// assert_eq!(view.edge_count(), materialized.edge_count());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ProductView<'g> {
    base: &'g Graph,
    k: u32,
}

impl<'g> ProductView<'g> {
    /// Builds the view of `base □ K_k`. `k = 0` yields the empty view.
    ///
    /// # Panics
    ///
    /// Panics if `base.node_count() · k` exceeds the `u32` node-id space.
    #[must_use]
    pub fn new(base: &'g Graph, k: u32) -> Self {
        assert!(
            (base.node_count() as u64).saturating_mul(u64::from(k)) <= u64::from(u32::MAX),
            "product graph would exceed the u32 node-id space"
        );
        Self { base, k }
    }

    /// The base graph the view borrows.
    #[must_use]
    pub fn base(&self) -> &'g Graph {
        self.base
    }

    /// The palette size `k`.
    #[must_use]
    pub fn palette(&self) -> u32 {
        self.k
    }

    /// Decomposes a product node id into `(base node, colour)`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (in particular when `k = 0`).
    #[must_use]
    pub fn node_of(&self, id: NodeId) -> (NodeId, u32) {
        assert!((id as usize) < self.node_count(), "node {id} out of range");
        (id / self.k, id % self.k)
    }
}

impl GraphView for ProductView<'_> {
    fn node_count(&self) -> usize {
        self.base.node_count() * self.k as usize
    }

    fn degree(&self, id: NodeId) -> usize {
        let (u, _) = self.node_of(id);
        Graph::degree(self.base, u) + (self.k as usize - 1)
    }

    fn try_for_each_neighbor<F>(&self, id: NodeId, mut f: F) -> ControlFlow<()>
    where
        F: FnMut(NodeId) -> ControlFlow<()>,
    {
        let (u, c) = self.node_of(id);
        let nbrs = self.base.neighbors(u);
        // Base neighbours w < u come first (their blocks precede u's), then
        // u's own colour clique, then base neighbours w > u — all ascending.
        let split = nbrs.partition_point(|&w| w < u);
        for &w in &nbrs[..split] {
            f(w * self.k + c)?;
        }
        for b in 0..self.k {
            if b != c {
                f(u * self.k + b)?;
            }
        }
        for &w in &nbrs[split..] {
            f(w * self.k + c)?;
        }
        ControlFlow::Continue(())
    }

    fn edge_count(&self) -> usize {
        let k = self.k as usize;
        self.base.edge_count() * k + self.base.node_count() * (k * k.saturating_sub(1) / 2)
    }

    fn max_degree(&self) -> usize {
        if self.node_count() == 0 {
            0
        } else {
            self.base.max_degree() + (self.k as usize - 1)
        }
    }
}

/// The subgraph induced by a **sorted** node selection, as a lazy view.
///
/// Selected node `nodes[i]` becomes view node `i`; because the selection is
/// required to be strictly ascending, the relabelling is monotone and the
/// view inherits the base CSR's ascending neighbour order for free. The
/// numbering matches
/// [`ops::induced_subgraph`](crate::ops::induced_subgraph) on the same
/// (sorted) selection. Stores the selection plus one `u32` per base node
/// (the reverse map) — never the induced adjacency.
///
/// # Examples
///
/// ```
/// use mis_graph::{generators, GraphView, InducedView};
///
/// let g = generators::cycle(6);
/// let sub = InducedView::new(&g, &[0, 1, 2, 3]);
/// assert_eq!(sub.node_count(), 4);
/// assert_eq!(sub.edge_count(), 3); // the cycle edge 5-0 is cut
/// assert_eq!(sub.original(2), 2);
/// ```
#[derive(Debug, Clone)]
pub struct InducedView<'g> {
    base: &'g Graph,
    nodes: Vec<NodeId>,
    /// Base id → view id, `u32::MAX` for unselected nodes.
    remap: Vec<u32>,
}

impl<'g> InducedView<'g> {
    /// Builds the view induced by `nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is not strictly ascending (which also rules out
    /// duplicates) or contains an out-of-range id.
    #[must_use]
    pub fn new(base: &'g Graph, nodes: &[NodeId]) -> Self {
        let mut remap = vec![u32::MAX; base.node_count()];
        let mut prev: Option<NodeId> = None;
        for (i, &v) in nodes.iter().enumerate() {
            assert!(
                (v as usize) < base.node_count(),
                "node {v} out of range for the base graph"
            );
            assert!(
                prev.is_none_or(|p| p < v),
                "selection must be strictly ascending (got {v} after {prev:?})"
            );
            prev = Some(v);
            remap[v as usize] = u32::try_from(i).expect("selection index overflows u32");
        }
        Self {
            base,
            nodes: nodes.to_vec(),
            remap,
        }
    }

    /// The base graph the view borrows.
    #[must_use]
    pub fn base(&self) -> &'g Graph {
        self.base
    }

    /// The selected base nodes, ascending (view node `i` is `selection()[i]`).
    #[must_use]
    pub fn selection(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The base node that view node `i` stands for.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn original(&self, i: NodeId) -> NodeId {
        self.nodes[i as usize]
    }
}

impl GraphView for InducedView<'_> {
    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn degree(&self, i: NodeId) -> usize {
        self.base
            .neighbors(self.nodes[i as usize])
            .iter()
            .filter(|&&u| self.remap[u as usize] != u32::MAX)
            .count()
    }

    fn try_for_each_neighbor<F>(&self, i: NodeId, mut f: F) -> ControlFlow<()>
    where
        F: FnMut(NodeId) -> ControlFlow<()>,
    {
        for &u in self.base.neighbors(self.nodes[i as usize]) {
            let mapped = self.remap[u as usize];
            if mapped != u32::MAX {
                f(mapped)?;
            }
        }
        ControlFlow::Continue(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, ops};
    use rand::{rngs::SmallRng, SeedableRng};

    /// Full structural equality between a view and a materialised graph.
    fn assert_view_matches(view: &impl GraphView, graph: &Graph) {
        assert_eq!(view.node_count(), graph.node_count());
        assert_eq!(GraphView::edge_count(view), graph.edge_count());
        assert_eq!(GraphView::max_degree(view), graph.max_degree());
        for v in graph.nodes() {
            assert_eq!(GraphView::degree(view, v), graph.degree(v), "degree({v})");
            assert_eq!(view.neighbors_vec(v), graph.neighbors(v), "neighbors({v})");
        }
        assert_eq!(&view.materialize(), graph);
    }

    fn test_graphs() -> Vec<(&'static str, Graph)> {
        let mut rng = SmallRng::seed_from_u64(99);
        vec![
            ("empty", Graph::empty(0)),
            ("isolated", Graph::empty(5)),
            ("path", generators::path(7)),
            ("cycle", generators::cycle(9)),
            ("star", generators::star(8)),
            ("complete", generators::complete(6)),
            ("grid", generators::grid2d(4, 5)),
            ("gnp", generators::gnp(30, 0.2, &mut rng)),
            ("tree", generators::random_tree(25, &mut rng)),
        ]
    }

    #[test]
    fn graph_implements_view_consistently() {
        for (name, g) in test_graphs() {
            assert_view_matches(&g, &g);
            let _ = name;
        }
    }

    #[test]
    fn line_view_matches_materialized_line_graph() {
        for (name, g) in test_graphs() {
            let view = LineGraphView::new(&g);
            let (lg, edges) = ops::line_graph(&g);
            assert_eq!(view.edges(), &edges[..], "{name}");
            assert_view_matches(&view, &lg);
        }
    }

    #[test]
    fn line_view_edge_of_round_trips() {
        let g = generators::grid2d(3, 4);
        let view = LineGraphView::new(&g);
        for (i, &(u, v)) in view.edges().iter().enumerate() {
            assert_eq!(view.edge_of(i as NodeId), (u, v));
            assert!(u < v);
            assert!(g.has_edge(u, v));
        }
        assert_eq!(view.base().node_count(), g.node_count());
    }

    #[test]
    fn product_view_matches_materialized_product() {
        for (name, g) in test_graphs() {
            for k in [1u32, 2, 4] {
                let view = ProductView::new(&g, k);
                let prod = ops::cartesian_product(&g, &generators::complete(k as usize));
                assert_view_matches(&view, &prod);
                let _ = name;
            }
        }
    }

    #[test]
    fn product_view_node_decomposition() {
        let g = generators::path(4);
        let view = ProductView::new(&g, 3);
        assert_eq!(view.palette(), 3);
        assert_eq!(view.node_of(0), (0, 0));
        assert_eq!(view.node_of(7), (2, 1));
        assert_eq!(view.base().node_count(), 4);
    }

    #[test]
    fn product_view_with_zero_palette_is_empty() {
        let g = generators::path(3);
        let view = ProductView::new(&g, 0);
        assert!(view.is_empty());
        assert_eq!(GraphView::edge_count(&view), 0);
        assert_eq!(GraphView::max_degree(&view), 0);
    }

    #[test]
    fn induced_view_matches_materialized_subgraph() {
        let mut rng = SmallRng::seed_from_u64(5);
        for (name, g) in test_graphs() {
            // Every third node, then every node, then nothing.
            use rand::Rng as _;
            let selections: Vec<Vec<NodeId>> = vec![
                (0..g.node_count() as NodeId).step_by(3).collect(),
                (0..g.node_count() as NodeId).collect(),
                Vec::new(),
                (0..g.node_count() as NodeId)
                    .filter(|_| rng.random_bool(0.5))
                    .collect(),
            ];
            for sel in selections {
                let view = InducedView::new(&g, &sel);
                let sub = ops::induced_subgraph(&g, &sel);
                assert_view_matches(&view, &sub);
                assert_eq!(view.selection(), &sel[..], "{name}");
            }
        }
    }

    #[test]
    fn induced_view_maps_ids_both_ways() {
        let g = generators::cycle(8);
        let view = InducedView::new(&g, &[1, 3, 4, 7]);
        assert_eq!(view.original(2), 4);
        assert!(view.has_edge(1, 2)); // base edge 3-4
        assert!(!view.has_edge(0, 1)); // base nodes 1, 3 not adjacent
        assert_eq!(view.base().node_count(), 8);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn induced_view_rejects_unsorted_selection() {
        let g = generators::path(4);
        let _ = InducedView::new(&g, &[2, 1]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn induced_view_rejects_duplicates() {
        let g = generators::path(4);
        let _ = InducedView::new(&g, &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn induced_view_rejects_out_of_range() {
        let g = generators::path(4);
        let _ = InducedView::new(&g, &[9]);
    }

    #[test]
    fn default_has_edge_agrees_with_graph() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = generators::gnp(20, 0.3, &mut rng);
        let view = LineGraphView::new(&g);
        let lg = view.materialize();
        for u in 0..view.node_count() as NodeId {
            for v in 0..view.node_count() as NodeId {
                assert_eq!(view.has_edge(u, v), lg.has_edge(u, v), "({u}, {v})");
            }
        }
    }

    #[test]
    fn early_exit_stops_iteration() {
        let g = generators::star(6);
        let mut seen = Vec::new();
        let flow = g.try_for_each_neighbor(0, |u| {
            seen.push(u);
            if seen.len() == 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(flow, ControlFlow::Break(()));
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn views_are_debug_and_clone() {
        let g = generators::path(4);
        let lv = LineGraphView::new(&g);
        assert!(format!("{lv:?}").contains("LineGraphView"));
        let pv = ProductView::new(&g, 2);
        assert!(format!("{:?}", pv.clone()).contains("ProductView"));
        let iv = InducedView::new(&g, &[0, 2]);
        assert!(format!("{:?}", iv.clone()).contains("InducedView"));
        let _ = lv.clone();
    }
}
