//! Delta-varint compressed adjacency: the in-RAM backend of the scale tier.
//!
//! [`CompressedGraph`] stores neighbour lists as **zigzag/LEB128 deltas**
//! grouped into word-aligned blocks of [`BLOCK_NODES`] consecutive nodes.
//! Each block carries a small per-node directory, so `degree` and
//! neighbour iteration remain O(1)-indexed — no scanning from the start of
//! the structure — while sorted adjacency compresses to the entropy of its
//! gaps instead of a flat 4 bytes per neighbour. On bounded-degree
//! topologies (grids, tori) that is ≥2× fewer adjacency bytes per node
//! than the CSR [`Graph`]; on sparse `G(n, p)` the gap entropy is larger
//! and the saving correspondingly smaller.
//!
//! The type implements [`GraphView`], so both propagation kernels, the
//! message runtime, the lazy views and the batch/sharding machinery run on
//! it unchanged — and, because the encoder is deterministic, two
//! structurally equal graphs always encode to byte-equal blocks.
//!
//! The same block codec is the unit of the on-disk shard format consumed
//! by [`DiskGraph`](crate::DiskGraph); see [`stream`](crate::stream).
//!
//! # Block layout
//!
//! A block covers up to [`BLOCK_NODES`] consecutive node ids and is padded
//! to an 8-byte boundary:
//!
//! ```text
//! [width: u8]                  directory entry width w ∈ {2, 4}
//! [directory: span × w bytes]  per-node byte offset into the payload
//! [payload]                    per node: varint(degree),
//!                              zigzag-varint(first − v), varint gaps
//! ```
//!
//! # Examples
//!
//! ```
//! use mis_graph::{generators, CompressedGraph, GraphView};
//!
//! let g = generators::torus2d(8, 8);
//! let c = CompressedGraph::from_view(&g);
//! assert_eq!(c.edge_count(), g.edge_count());
//! for v in 0..g.node_count() as u32 {
//!     assert_eq!(c.neighbors_vec(v), g.neighbors(v));
//! }
//! assert!(c.adjacency_bytes() < g.adjacency_bytes());
//! ```

use core::fmt;
use core::ops::ControlFlow;

use crate::{Graph, GraphView, NodeId};

/// Number of consecutive nodes grouped into one compressed block.
pub const BLOCK_NODES: usize = 64;

/// Appends `x` to `out` as an LEB128 varint (7 bits per byte, high bit =
/// continuation).
pub(crate) fn write_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint at `*pos`, advancing it. Returns `None` on
/// truncated or over-long (> 10 byte) input.
pub(crate) fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        x |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(x);
        }
        shift += 7;
    }
}

/// Maps a signed value onto an unsigned one with small absolute values
/// staying small (`0, -1, 1, -2 → 0, 1, 2, 3`).
pub(crate) fn zigzag_encode(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub(crate) fn zigzag_decode(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

/// Encodes one node's sorted neighbour list into `payload`:
/// `varint(degree)`, then `zigzag(first − v)` and ascending gaps.
pub(crate) fn encode_adjacency(v: NodeId, neighbors: &[NodeId], payload: &mut Vec<u8>) {
    write_varint(payload, neighbors.len() as u64);
    let mut prev: Option<NodeId> = None;
    for &u in neighbors {
        match prev {
            None => {
                let delta = i64::from(u) - i64::from(v);
                write_varint(payload, zigzag_encode(delta));
            }
            Some(p) => {
                debug_assert!(u > p, "neighbour list must be strictly ascending");
                write_varint(payload, u64::from(u) - u64::from(p));
            }
        }
        prev = Some(u);
    }
}

/// Accumulates per-node encodings for one block and seals them into the
/// final `[width][directory][payload]` byte layout. Shared by
/// [`CompressedGraphBuilder`] and the shard writer.
#[derive(Debug, Default)]
pub(crate) struct BlockWriter {
    dir: Vec<u32>,
    payload: Vec<u8>,
}

impl BlockWriter {
    /// Nodes encoded into the open block so far.
    pub(crate) fn len(&self) -> usize {
        self.dir.len()
    }

    /// Whether the open block has no nodes yet.
    pub(crate) fn is_empty(&self) -> bool {
        self.dir.is_empty()
    }

    /// Encodes `v`'s sorted neighbour list as the next node of the block.
    pub(crate) fn push(&mut self, v: NodeId, neighbors: &[NodeId]) {
        debug_assert!(self.dir.len() < BLOCK_NODES, "block overfull");
        self.dir
            .push(u32::try_from(self.payload.len()).expect("block payload overflows u32"));
        encode_adjacency(v, neighbors, &mut self.payload);
    }

    /// Appends the sealed block (padded to 8 bytes) to `out` and resets
    /// the writer for the next block. No-op on an empty writer.
    pub(crate) fn seal_into(&mut self, out: &mut Vec<u8>) {
        if self.dir.is_empty() {
            return;
        }
        let width: usize = if self.payload.len() <= u16::MAX as usize {
            2
        } else {
            4
        };
        out.push(width as u8);
        for &entry in &self.dir {
            out.extend_from_slice(&entry.to_le_bytes()[..width]);
        }
        out.extend_from_slice(&self.payload);
        while !out.len().is_multiple_of(8) {
            out.push(0);
        }
        self.dir.clear();
        self.payload.clear();
    }
}

/// A fully decoded block: prefix offsets plus the concatenated neighbour
/// lists of its nodes. The page unit of [`DiskGraph`](crate::DiskGraph)'s
/// LRU cache.
#[derive(Debug)]
pub(crate) struct DecodedBlock {
    /// `starts[i]..starts[i + 1]` indexes `neighbors` for the block's
    /// `i`-th node; length is span + 1.
    pub(crate) starts: Vec<u32>,
    /// Concatenated sorted neighbour lists.
    pub(crate) neighbors: Vec<NodeId>,
}

impl DecodedBlock {
    /// Neighbour slice of the block-local `slot`.
    pub(crate) fn neighbors_of(&self, slot: usize) -> &[NodeId] {
        &self.neighbors[self.starts[slot] as usize..self.starts[slot + 1] as usize]
    }
}

/// Decodes and validates a sealed block covering `span` nodes starting at
/// global id `base`, checking the [`GraphView`] adjacency contract
/// (ascending lists, no self-loops, endpoints below `node_count`).
pub(crate) fn decode_block(
    bytes: &[u8],
    base: NodeId,
    span: usize,
    node_count: usize,
) -> Result<DecodedBlock, String> {
    let width = match bytes.first() {
        Some(&w @ (2 | 4)) => w as usize,
        Some(&w) => return Err(format!("bad directory width {w}")),
        None => return Err("empty block".into()),
    };
    let payload = bytes
        .get(1 + span * width..)
        .ok_or("block shorter than its directory")?;
    let mut starts = Vec::with_capacity(span + 1);
    let mut neighbors = Vec::new();
    for slot in 0..span {
        let dir = &bytes[1 + slot * width..1 + (slot + 1) * width];
        let offset = if width == 2 {
            u64::from(u16::from_le_bytes([dir[0], dir[1]]))
        } else {
            u64::from(u32::from_le_bytes([dir[0], dir[1], dir[2], dir[3]]))
        } as usize;
        let v = base + slot as NodeId;
        let mut pos = offset;
        let degree = read_varint(payload, &mut pos).ok_or("truncated degree")? as usize;
        starts.push(u32::try_from(neighbors.len()).expect("block adjacency overflows u32"));
        let mut prev: Option<i64> = None;
        for _ in 0..degree {
            let raw = read_varint(payload, &mut pos).ok_or("truncated neighbour")?;
            let u = match prev {
                None => i64::from(v) + zigzag_decode(raw),
                Some(p) => p
                    .checked_add(raw as i64)
                    .ok_or("neighbour delta overflow")?,
            };
            if u < 0 || u as u64 >= node_count as u64 {
                return Err(format!("neighbour {u} of node {v} out of range"));
            }
            if u == i64::from(v) {
                return Err(format!("self-loop at node {v}"));
            }
            if prev.is_some_and(|p| u <= p) {
                return Err(format!("non-ascending neighbour list at node {v}"));
            }
            neighbors.push(u as NodeId);
            prev = Some(u);
        }
    }
    starts.push(u32::try_from(neighbors.len()).expect("block adjacency overflows u32"));
    Ok(DecodedBlock { starts, neighbors })
}

/// An immutable simple undirected graph with delta-varint compressed
/// adjacency, the in-RAM scale-tier backend. See the [module docs](self)
/// for the encoding and the space/time trade-off.
#[derive(Clone, PartialEq, Eq)]
pub struct CompressedGraph {
    node_count: usize,
    edge_count: usize,
    max_degree: usize,
    /// Byte offset of each block in `data` (+ one past-the-end entry);
    /// all multiples of 8 — blocks are word-aligned.
    block_starts: Vec<u64>,
    /// Concatenated sealed blocks.
    data: Vec<u8>,
}

impl CompressedGraph {
    /// Compresses any [`GraphView`] (CSR graph, lazy view, …) into block
    /// form. The encoder is deterministic: structurally equal inputs
    /// produce byte-equal compressed graphs.
    pub fn from_view<G: GraphView + ?Sized>(g: &G) -> Self {
        let mut builder = CompressedGraphBuilder::new(g.node_count());
        let mut scratch: Vec<NodeId> = Vec::new();
        for v in 0..g.node_count() as NodeId {
            scratch.clear();
            g.for_each_neighbor(v, |u| scratch.push(u));
            builder.push_node(&scratch);
        }
        builder.finish()
    }

    /// Assembles a graph from already-encoded parts (shard loading).
    pub(crate) fn from_parts(
        node_count: usize,
        edge_count: usize,
        max_degree: usize,
        block_starts: Vec<u64>,
        data: Vec<u8>,
    ) -> Self {
        let g = Self {
            node_count,
            edge_count,
            max_degree,
            block_starts,
            data,
        };
        g.debug_check_overrides();
        g
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of undirected edges (stored, O(1)).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Maximum degree Δ (stored, O(1)).
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.node_count == 0
    }

    /// Heap bytes of the compressed adjacency structure (block data plus
    /// the block index) — comparable with [`Graph::adjacency_bytes`].
    #[must_use]
    pub fn adjacency_bytes(&self) -> usize {
        self.data.len() + self.block_starts.len() * core::mem::size_of::<u64>()
    }

    /// Block count (`⌈n / BLOCK_NODES⌉`).
    pub(crate) fn block_count(&self) -> usize {
        self.block_starts.len() - 1
    }

    /// The sealed bytes of block `b`.
    pub(crate) fn block_bytes(&self, b: usize) -> &[u8] {
        &self.data[self.block_starts[b] as usize..self.block_starts[b + 1] as usize]
    }

    /// Node span covered by block `b`.
    pub(crate) fn block_span(&self, b: usize) -> usize {
        (self.node_count - b * BLOCK_NODES).min(BLOCK_NODES)
    }

    /// Returns `(payload, position)` for node `v`'s encoding inside its
    /// block. Panics if `v` is out of range.
    fn node_entry(&self, v: NodeId) -> (&[u8], usize) {
        assert!(
            (v as usize) < self.node_count,
            "node {v} out of range for graph with {} nodes",
            self.node_count
        );
        let block = v as usize / BLOCK_NODES;
        let slot = v as usize % BLOCK_NODES;
        let span = self.block_span(block);
        let bytes = self.block_bytes(block);
        let width = bytes[0] as usize;
        let dir = &bytes[1 + slot * width..1 + (slot + 1) * width];
        let offset = if width == 2 {
            usize::from(u16::from_le_bytes([dir[0], dir[1]]))
        } else {
            u32::from_le_bytes([dir[0], dir[1], dir[2], dir[3]]) as usize
        };
        (&bytes[1 + span * width..], offset)
    }

    /// Asserts the stored `edge_count`/`max_degree` against the
    /// [`GraphView`] default degree-scan formulas on small graphs — the
    /// guard that keeps the O(1) overrides honest (debug builds only).
    pub(crate) fn debug_check_overrides(&self) {
        #[cfg(debug_assertions)]
        if self.node_count <= 4096 {
            let degrees: Vec<usize> = (0..self.node_count as NodeId)
                .map(|v| GraphView::degree(self, v))
                .collect();
            let total: usize = degrees.iter().sum();
            debug_assert_eq!(
                self.edge_count,
                total / 2,
                "stored edge_count disagrees with the degree-sum default"
            );
            debug_assert_eq!(
                self.max_degree,
                degrees.iter().copied().max().unwrap_or(0),
                "stored max_degree disagrees with the degree-scan default"
            );
        }
    }
}

impl GraphView for CompressedGraph {
    fn node_count(&self) -> usize {
        self.node_count
    }

    fn degree(&self, v: NodeId) -> usize {
        let (payload, mut pos) = self.node_entry(v);
        read_varint(payload, &mut pos).expect("valid block encoding") as usize
    }

    fn try_for_each_neighbor<F>(&self, v: NodeId, mut f: F) -> ControlFlow<()>
    where
        F: FnMut(NodeId) -> ControlFlow<()>,
    {
        let (payload, mut pos) = self.node_entry(v);
        let degree = read_varint(payload, &mut pos).expect("valid block encoding");
        let mut prev = i64::from(v);
        for i in 0..degree {
            let raw = read_varint(payload, &mut pos).expect("valid block encoding");
            let u = if i == 0 {
                prev + zigzag_decode(raw)
            } else {
                prev + raw as i64
            };
            prev = u;
            f(u as NodeId)?;
        }
        ControlFlow::Continue(())
    }

    fn edge_count(&self) -> usize {
        self.edge_count
    }

    fn max_degree(&self) -> usize {
        self.max_degree
    }

    fn is_empty(&self) -> bool {
        self.node_count == 0
    }
}

impl fmt::Debug for CompressedGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompressedGraph")
            .field("nodes", &self.node_count)
            .field("edges", &self.edge_count)
            .field("max_degree", &self.max_degree)
            .field("blocks", &self.block_count())
            .field("adjacency_bytes", &self.adjacency_bytes())
            .finish()
    }
}

impl From<&Graph> for CompressedGraph {
    fn from(g: &Graph) -> Self {
        Self::from_view(g)
    }
}

/// Streaming constructor for [`CompressedGraph`]: push each node's sorted
/// neighbour list in ascending node order, then [`finish`](Self::finish).
/// Used by [`CompressedGraph::from_view`] and the shard loader, and
/// usable directly when adjacency is produced a node at a time.
///
/// # Examples
///
/// ```
/// use mis_graph::{CompressedGraphBuilder, GraphView};
///
/// let mut b = CompressedGraphBuilder::new(3); // path 0-1-2
/// b.push_node(&[1]);
/// b.push_node(&[0, 2]);
/// b.push_node(&[1]);
/// let g = b.finish();
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.neighbors_vec(1), vec![0, 2]);
/// ```
#[derive(Debug)]
pub struct CompressedGraphBuilder {
    node_count: usize,
    next_node: usize,
    degree_sum: usize,
    max_degree: usize,
    block: BlockWriter,
    block_starts: Vec<u64>,
    data: Vec<u8>,
}

impl CompressedGraphBuilder {
    /// Creates a builder for a graph with `node_count` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` exceeds the `u32` index space.
    #[must_use]
    pub fn new(node_count: usize) -> Self {
        assert!(
            node_count <= u32::MAX as usize,
            "node count exceeds u32 index space"
        );
        Self {
            node_count,
            next_node: 0,
            degree_sum: 0,
            max_degree: 0,
            block: BlockWriter::default(),
            block_starts: vec![0],
            data: Vec::new(),
        }
    }

    /// Encodes the next node's neighbour list. Lists must be pushed for
    /// nodes `0, 1, …, n − 1` in order.
    ///
    /// # Panics
    ///
    /// Panics if more than `node_count` lists are pushed or the list
    /// violates the adjacency contract (unsorted, duplicate, self-loop or
    /// out-of-range entries).
    pub fn push_node(&mut self, neighbors: &[NodeId]) {
        assert!(
            self.next_node < self.node_count,
            "pushed more neighbour lists than nodes"
        );
        let v = self.next_node as NodeId;
        let mut prev: Option<NodeId> = None;
        for &u in neighbors {
            assert!(u != v, "self-loop at node {v}");
            assert!(
                (u as usize) < self.node_count,
                "neighbour {u} out of range for graph with {} nodes",
                self.node_count
            );
            assert!(
                prev.is_none_or(|p| u > p),
                "neighbour list of node {v} must be strictly ascending"
            );
            prev = Some(u);
        }
        self.block.push(v, neighbors);
        self.degree_sum += neighbors.len();
        self.max_degree = self.max_degree.max(neighbors.len());
        self.next_node += 1;
        if self.block.len() == BLOCK_NODES {
            self.block.seal_into(&mut self.data);
            self.block_starts.push(self.data.len() as u64);
        }
    }

    /// Seals the final block and returns the finished graph.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `node_count` lists were pushed, or if the
    /// pushed lists were not symmetric (odd degree sum).
    #[must_use]
    pub fn finish(mut self) -> CompressedGraph {
        assert_eq!(
            self.next_node, self.node_count,
            "pushed fewer neighbour lists than nodes"
        );
        if !self.block.is_empty() {
            self.block.seal_into(&mut self.data);
            self.block_starts.push(self.data.len() as u64);
        }
        assert!(
            self.degree_sum.is_multiple_of(2),
            "neighbour lists are not symmetric (odd degree sum)"
        );
        let g = CompressedGraph {
            node_count: self.node_count,
            edge_count: self.degree_sum / 2,
            max_degree: self.max_degree,
            block_starts: self.block_starts,
            data: self.data,
        };
        g.debug_check_overrides();
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::{rngs::SmallRng, SeedableRng};

    fn assert_structural_eq(c: &CompressedGraph, g: &Graph, label: &str) {
        assert_eq!(c.node_count(), g.node_count(), "{label}: node count");
        assert_eq!(
            GraphView::edge_count(c),
            g.edge_count(),
            "{label}: edge count"
        );
        assert_eq!(
            GraphView::max_degree(c),
            Graph::max_degree(g),
            "{label}: max degree"
        );
        for v in 0..g.node_count() as NodeId {
            assert_eq!(GraphView::degree(c, v), g.degree(v), "{label}: degree {v}");
            assert_eq!(c.neighbors_vec(v), g.neighbors(v), "{label}: nbrs {v}");
        }
    }

    #[test]
    fn varint_round_trips() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX];
        for &x in &values {
            buf.clear();
            write_varint(&mut buf, x);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(x));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1 << 40);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
    }

    #[test]
    fn zigzag_round_trips() {
        for x in [
            0i64,
            1,
            -1,
            63,
            -64,
            i64::from(i32::MAX),
            i64::from(i32::MIN),
        ] {
            assert_eq!(zigzag_decode(zigzag_encode(x)), x);
        }
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
    }

    #[test]
    fn matches_csr_on_generator_families() {
        let mut rng = SmallRng::seed_from_u64(0xC0DEC);
        let graphs = [
            ("gnp", generators::gnp(200, 0.1, &mut rng)),
            ("dense", generators::gnp(80, 0.7, &mut rng)),
            ("torus", generators::torus2d(9, 11)),
            ("star", generators::star(150)),
            ("ba", generators::barabasi_albert(150, 3, &mut rng)),
            ("empty-edges", Graph::empty(130)),
            ("empty", Graph::empty(0)),
            ("single", Graph::empty(1)),
        ];
        for (label, g) in &graphs {
            let c = CompressedGraph::from_view(g);
            assert_structural_eq(&c, g, label);
        }
    }

    #[test]
    fn deterministic_encoding() {
        let g = generators::torus2d(5, 7);
        assert_eq!(
            CompressedGraph::from_view(&g),
            CompressedGraph::from_view(&g)
        );
    }

    #[test]
    fn blocks_are_word_aligned() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = generators::gnp(500, 0.05, &mut rng);
        let c = CompressedGraph::from_view(&g);
        assert_eq!(c.block_count(), 500usize.div_ceil(BLOCK_NODES));
        for b in 0..=c.block_count() {
            assert!(c.block_starts[b].is_multiple_of(8), "block {b} unaligned");
        }
    }

    #[test]
    fn regular_topology_compresses_2x_vs_csr() {
        // Degree-4 torus: CSR pays 4 B per neighbour + 8 B per offset
        // = 24 B/node; delta blocks need ~10 B/node.
        let g = generators::torus2d(100, 100);
        let c = CompressedGraph::from_view(&g);
        let csr = g.adjacency_bytes() as f64;
        let compressed = c.adjacency_bytes() as f64;
        assert!(
            csr / compressed >= 2.0,
            "expected ≥2x on the torus, got {:.2}",
            csr / compressed
        );
    }

    #[test]
    fn wide_block_directory_on_hubs() {
        // A star centred in block 0 with ~100k leaves: the centre's list
        // alone exceeds u16 payload offsets for later nodes... the centre
        // is node 0, so its *own* offset fits, but the block payload is
        // large; craft a block whose second node starts past 64 KiB by
        // giving node 0 a >64 KiB encoding (needs ≥ ~33k neighbours with
        // 2-byte gaps).
        let n = 100_000;
        let edges: Vec<(NodeId, NodeId)> = (1..n as NodeId).map(|v| (0, v)).collect();
        let g = Graph::from_edges(n, edges).unwrap();
        let c = CompressedGraph::from_view(&g);
        assert_eq!(c.block_bytes(0)[0], 4, "hub block should use 4-byte dir");
        assert_structural_eq(&c, &g, "star hub");
    }

    #[test]
    fn decode_block_round_trips() {
        let g = generators::torus2d(8, 8);
        let c = CompressedGraph::from_view(&g);
        for b in 0..c.block_count() {
            let base = (b * BLOCK_NODES) as NodeId;
            let span = c.block_span(b);
            let decoded = decode_block(c.block_bytes(b), base, span, c.node_count()).unwrap();
            for slot in 0..span {
                assert_eq!(
                    decoded.neighbors_of(slot),
                    g.neighbors(base + slot as NodeId)
                );
            }
        }
    }

    #[test]
    fn decode_block_rejects_corruption() {
        let g = generators::torus2d(4, 4);
        let c = CompressedGraph::from_view(&g);
        let mut bytes = c.block_bytes(0).to_vec();
        bytes[0] = 3; // invalid width
        assert!(decode_block(&bytes, 0, 16, 16).is_err());
        let too_short = &c.block_bytes(0)[..2];
        assert!(decode_block(too_short, 0, 16, 16).is_err());
        assert!(decode_block(&[], 0, 1, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn builder_rejects_unsorted_list() {
        let mut b = CompressedGraphBuilder::new(3);
        b.push_node(&[2, 1]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn builder_rejects_self_loop() {
        let mut b = CompressedGraphBuilder::new(3);
        b.push_node(&[0]);
    }

    #[test]
    #[should_panic(expected = "fewer neighbour lists")]
    fn builder_rejects_missing_nodes() {
        let b = CompressedGraphBuilder::new(3);
        let _ = b.finish();
    }

    #[test]
    fn has_edge_and_views_work_through_the_trait() {
        let g = generators::gnp(120, 0.1, &mut SmallRng::seed_from_u64(3));
        let c = CompressedGraph::from_view(&g);
        for v in 0..30 as NodeId {
            for u in 0..30 as NodeId {
                assert_eq!(GraphView::has_edge(&c, u, v), g.has_edge(u, v));
            }
        }
        assert_eq!(c.materialize(), g);
    }
}
