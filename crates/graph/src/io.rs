//! Plain-text edge-list serialisation, DIMACS `edge` format, and Graphviz
//! DOT export.
//!
//! The edge-list format is line-oriented:
//!
//! ```text
//! # comments start with '#'
//! nodes 5
//! 0 1
//! 1 2
//! ```
//!
//! A `nodes <n>` header fixes the node count (allowing isolated trailing
//! nodes); without it, the count is one more than the largest endpoint.

use std::io::{self, BufRead, Read, Write};
use std::path::Path;

use crate::stream::{ShardWriter, ShardedGraphSummary, StreamError};
use crate::{Graph, GraphBuilder, GraphError, NodeId};

/// Serialises a graph in the edge-list format.
///
/// Accepts any [`Write`] by value; pass `&mut writer` to keep ownership
/// (mutable references implement `Write` too).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use mis_graph::{io::write_edge_list, Graph};
///
/// let g = Graph::from_edges(3, [(0, 1)])?;
/// let mut buf = Vec::new();
/// write_edge_list(&mut buf, &g)?;
/// let text = String::from_utf8(buf).unwrap();
/// assert!(text.contains("nodes 3"));
/// assert!(text.contains("0 1"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_edge_list<W: Write>(mut writer: W, g: &Graph) -> io::Result<()> {
    writeln!(writer, "nodes {}", g.node_count())?;
    for (u, v) in g.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

/// Renders a graph as a string in the edge-list format.
#[must_use]
pub fn to_edge_list_string(g: &Graph) -> String {
    let mut buf = Vec::new();
    write_edge_list(&mut buf, g).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("edge list output is ASCII")
}

/// Parses the edge-list format from a string.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for malformed lines and the usual
/// construction errors for invalid edges.
///
/// # Examples
///
/// ```
/// use mis_graph::io::parse_edge_list;
///
/// let g = parse_edge_list("nodes 4\n0 1\n2 3\n")?;
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), mis_graph::GraphError>(())
/// ```
pub fn parse_edge_list(text: &str) -> Result<Graph, GraphError> {
    let mut declared_nodes: Option<usize> = None;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut max_node: Option<NodeId> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("nodes ") {
            let n: usize = rest.trim().parse().map_err(|_| GraphError::Parse {
                line: line_no,
                reason: format!("invalid node count {rest:?}"),
            })?;
            declared_nodes = Some(n);
            continue;
        }
        let mut parts = line.split_whitespace();
        let (a, b) = match (parts.next(), parts.next(), parts.next()) {
            (Some(a), Some(b), None) => (a, b),
            _ => {
                return Err(GraphError::Parse {
                    line: line_no,
                    reason: format!("expected two endpoints, got {line:?}"),
                })
            }
        };
        let parse_node = |s: &str| -> Result<NodeId, GraphError> {
            s.parse().map_err(|_| GraphError::Parse {
                line: line_no,
                reason: format!("invalid node id {s:?}"),
            })
        };
        let (u, v) = (parse_node(a)?, parse_node(b)?);
        max_node = Some(max_node.map_or(u.max(v), |m| m.max(u).max(v)));
        edges.push((u, v));
    }
    let node_count = declared_nodes.unwrap_or_else(|| max_node.map_or(0, |m| m as usize + 1));
    Graph::from_edges(node_count, edges)
}

/// Reads and parses the edge-list format from any [`Read`].
///
/// Pass `&mut reader` to keep ownership of the reader.
///
/// # Errors
///
/// Returns a [`GraphError::Parse`] wrapping I/O failures (line 0) or any
/// parse/construction error.
pub fn read_edge_list<R: Read>(mut reader: R) -> Result<Graph, GraphError> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| GraphError::Parse {
            line: 0,
            reason: format!("I/O error: {e}"),
        })?;
    parse_edge_list(&text)
}

/// Renders the graph in Graphviz DOT format, optionally highlighting a set
/// of nodes (used by examples to display the selected MIS).
///
/// # Examples
///
/// ```
/// use mis_graph::{io::to_dot, Graph};
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)])?;
/// let dot = to_dot(&g, &[0, 2]);
/// assert!(dot.starts_with("graph"));
/// assert!(dot.contains("0 -- 1"));
/// assert!(dot.contains("style=filled"));
/// # Ok::<(), mis_graph::GraphError>(())
/// ```
#[must_use]
pub fn to_dot(g: &Graph, highlighted: &[NodeId]) -> String {
    let mut out = String::from("graph G {\n  node [shape=circle];\n");
    // detlint: allow(D01) -- contains-only lookup; iteration order comes from g.nodes()
    let special: std::collections::HashSet<NodeId> = highlighted.iter().copied().collect();
    for v in g.nodes() {
        if special.contains(&v) {
            out.push_str(&format!(
                "  {v} [style=filled, fillcolor=gold, penwidth=2];\n"
            ));
        } else {
            out.push_str(&format!("  {v};\n"));
        }
    }
    for (u, v) in g.edges() {
        out.push_str(&format!("  {u} -- {v};\n"));
    }
    out.push_str("}\n");
    out
}

/// Serialises a graph in DIMACS `edge` format (`p edge n m` header,
/// `e u v` lines, **1-indexed** endpoints) — the interchange format of
/// the DIMACS clique/colouring challenges, accepted by most graph tools.
///
/// # Examples
///
/// ```
/// use mis_graph::{io::to_dimacs, Graph};
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)])?;
/// let text = to_dimacs(&g);
/// assert!(text.contains("p edge 3 2"));
/// assert!(text.contains("e 1 2"));
/// # Ok::<(), mis_graph::GraphError>(())
/// ```
#[must_use]
pub fn to_dimacs(g: &Graph) -> String {
    let mut out = format!(
        "c generated by mis-graph\np edge {} {}\n",
        g.node_count(),
        g.edge_count()
    );
    for (u, v) in g.edges() {
        out.push_str(&format!("e {} {}\n", u + 1, v + 1));
    }
    out
}

/// Parses DIMACS `edge` format: `c` comment lines, one `p edge <n> <m>`
/// problem line, and `e <u> <v>` edge lines with 1-indexed endpoints.
///
/// The accepted-input behaviour is pinned:
///
/// * **duplicate edges** — `e 2 3` repeated, or reversed as `e 3 2` — are
///   silently deduplicated, matching common DIMACS instance files (the
///   declared `m` is not checked against the deduplicated count; use
///   [`parse_dimacs_strict`] when it should be);
/// * **self-loops** (`e 2 2`) are rejected with [`GraphError::SelfLoop`] —
///   the graphs here are simple, and silently dropping the line would
///   mask a corrupt instance;
/// * the problem line must carry **both** counts (`p edge <n> <m>`); a
///   header missing the edge count is malformed.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] when the problem line is missing,
/// repeated or malformed (unsupported format, missing or non-numeric
/// node/edge count), when an edge line is malformed or precedes the
/// problem line, or when an endpoint is `0`/out of range; and
/// [`GraphError::SelfLoop`] for a self-loop edge line.
///
/// # Examples
///
/// ```
/// use mis_graph::io::parse_dimacs;
///
/// let g = parse_dimacs("c a triangle\np edge 3 3\ne 1 2\ne 2 3\ne 1 3\n")?;
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 3);
/// # Ok::<(), mis_graph::GraphError>(())
/// ```
pub fn parse_dimacs(text: &str) -> Result<Graph, GraphError> {
    parse_dimacs_inner(text).map(|(g, _declared)| g)
}

/// [`parse_dimacs`] with the declared edge count **cross-checked**: after
/// parsing (and the usual silent deduplication), the header's `m` must
/// equal the number of distinct edges of the instance.
///
/// Use this for instances you generate or control — [`to_dimacs`] always
/// writes the deduplicated count, so everything it emits round-trips
/// through strict parsing. Keep the lenient [`parse_dimacs`] for instance
/// files from the wild, whose headers are frequently off by the
/// duplicates they contain.
///
/// # Errors
///
/// Everything [`parse_dimacs`] returns, plus
/// [`GraphError::EdgeCountMismatch`] when the declared `m` differs from
/// the deduplicated edge count.
///
/// # Examples
///
/// ```
/// use mis_graph::io::parse_dimacs_strict;
/// use mis_graph::GraphError;
///
/// let g = parse_dimacs_strict("p edge 3 2\ne 1 2\ne 2 3\n")?;
/// assert_eq!(g.edge_count(), 2);
///
/// // The same instance with a duplicate edge line: the lenient parser
/// // dedupes silently, the strict one reports the header mismatch.
/// let err = parse_dimacs_strict("p edge 3 3\ne 1 2\ne 2 1\ne 2 3\n").unwrap_err();
/// assert_eq!(
///     err,
///     GraphError::EdgeCountMismatch {
///         declared: 3,
///         found: 2
///     }
/// );
/// # Ok::<(), mis_graph::GraphError>(())
/// ```
pub fn parse_dimacs_strict(text: &str) -> Result<Graph, GraphError> {
    let (g, declared) = parse_dimacs_inner(text)?;
    if g.edge_count() != declared {
        return Err(GraphError::EdgeCountMismatch {
            declared,
            found: g.edge_count(),
        });
    }
    Ok(g)
}

/// One classified DIMACS line, as produced by [`parse_dimacs_line`].
enum DimacsLine {
    /// A comment or blank line.
    Skip,
    /// The `p edge <n> <m>` problem line.
    Problem {
        /// Declared node count `n`.
        nodes: usize,
        /// Declared edge count `m`.
        edges: usize,
    },
    /// An `e <u> <v>` edge line, already converted to 0-indexed endpoints.
    Edge(NodeId, NodeId),
}

/// Classifies and validates a single DIMACS line — the one lexer behind
/// both the in-RAM parser and [`parse_dimacs_streaming`], so the pinned
/// error behaviours cannot drift apart. `node_count` is the declared `n`
/// if a problem line was already seen.
fn parse_dimacs_line(
    line_no: usize,
    raw: &str,
    node_count: Option<usize>,
) -> Result<DimacsLine, GraphError> {
    let line = raw.trim();
    if line.is_empty() || line.starts_with('c') {
        return Ok(DimacsLine::Skip);
    }
    if let Some(rest) = line.strip_prefix("p ") {
        if node_count.is_some() {
            return Err(GraphError::Parse {
                line: line_no,
                reason: "duplicate problem line".into(),
            });
        }
        let mut parts = rest.split_whitespace();
        let format = parts.next();
        if format != Some("edge") && format != Some("col") {
            return Err(GraphError::Parse {
                line: line_no,
                reason: format!("unsupported DIMACS format {format:?}"),
            });
        }
        let nodes: usize =
            parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| GraphError::Parse {
                    line: line_no,
                    reason: "problem line needs a node count".into(),
                })?;
        let edges: usize =
            parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| GraphError::Parse {
                    line: line_no,
                    reason: "problem line needs an edge count".into(),
                })?;
        return Ok(DimacsLine::Problem { nodes, edges });
    }
    if let Some(rest) = line.strip_prefix("e ") {
        let n = node_count.ok_or_else(|| GraphError::Parse {
            line: line_no,
            reason: "edge line before problem line".into(),
        })?;
        let mut parts = rest.split_whitespace();
        let mut endpoint = || -> Result<NodeId, GraphError> {
            let s = parts.next().ok_or_else(|| GraphError::Parse {
                line: line_no,
                reason: "edge line needs two endpoints".into(),
            })?;
            let raw: usize = s.parse().map_err(|_| GraphError::Parse {
                line: line_no,
                reason: format!("invalid endpoint {s:?}"),
            })?;
            if raw == 0 || raw > n {
                return Err(GraphError::Parse {
                    line: line_no,
                    reason: format!("endpoint {raw} out of range 1..={n}"),
                });
            }
            Ok((raw - 1) as NodeId)
        };
        let (u, v) = (endpoint()?, endpoint()?);
        if u == v {
            // Reject at the offending line rather than deferring to
            // construction, so the named error carries the right node.
            return Err(GraphError::SelfLoop { node: u });
        }
        return Ok(DimacsLine::Edge(u, v));
    }
    Err(GraphError::Parse {
        line: line_no,
        reason: format!("unrecognised DIMACS line {line:?}"),
    })
}

/// The shared DIMACS parser: returns the graph plus the `m` the problem
/// line declared, so the strict entry point can cross-check it.
fn parse_dimacs_inner(text: &str) -> Result<(Graph, usize), GraphError> {
    let mut node_count: Option<usize> = None;
    let mut declared_edges = 0usize;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        match parse_dimacs_line(idx + 1, raw, node_count)? {
            DimacsLine::Skip => {}
            DimacsLine::Problem { nodes, edges: m } => {
                node_count = Some(nodes);
                declared_edges = m;
            }
            DimacsLine::Edge(u, v) => edges.push((u, v)),
        }
    }
    let n = node_count.ok_or_else(|| GraphError::Parse {
        line: 0,
        reason: "missing problem line".into(),
    })?;
    Graph::from_edges(n, edges).map(|g| (g, declared_edges))
}

/// Streams a DIMACS `edge` instance into the sharded on-disk format in
/// bounded memory: edge lines go straight into a
/// [`ShardWriter`] without ever materialising the
/// edge list, so instances larger than RAM convert shard by shard.
///
/// Line validation is shared with [`parse_dimacs`] (same lexer, same
/// pinned errors). The header cross-check is always strict: after the
/// usual silent deduplication, the declared `m` must match the distinct
/// edge count — you are converting an instance to a durable on-disk form,
/// so a lying header should fail loudly, as in [`parse_dimacs_strict`].
///
/// The resulting directory is read back with
/// [`CompressedGraph::load_sharded`](crate::CompressedGraph::load_sharded)
/// or [`DiskGraph::open`](crate::DiskGraph::open).
///
/// # Errors
///
/// Returns [`StreamError::Graph`] for every error [`parse_dimacs_strict`]
/// reports (wrapping I/O read failures as `Parse` at the offending line),
/// and [`StreamError::Io`] for shard-writing failures.
///
/// # Panics
///
/// Panics if `nodes_per_shard` is zero or not a multiple of the block
/// size, as in [`ShardWriter::create`](crate::ShardWriter::create).
///
/// # Examples
///
/// ```
/// use mis_graph::{generators, io, CompressedGraph};
/// use std::io::BufReader;
///
/// let g = generators::torus2d(5, 5);
/// let dir = std::env::temp_dir().join(format!("dimacs-stream-{}", std::process::id()));
/// let text = io::to_dimacs(&g);
/// let summary = io::parse_dimacs_streaming(BufReader::new(text.as_bytes()), &dir, 64)?;
/// assert_eq!(summary.edge_count, g.edge_count());
/// let back = CompressedGraph::load_sharded(&dir)?;
/// assert_eq!(back, CompressedGraph::from_view(&g));
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), mis_graph::StreamError>(())
/// ```
pub fn parse_dimacs_streaming<R: BufRead>(
    reader: R,
    dir: impl AsRef<Path>,
    nodes_per_shard: usize,
) -> Result<ShardedGraphSummary, StreamError> {
    let mut writer: Option<ShardWriter> = None;
    let mut node_count: Option<usize> = None;
    let mut declared_edges = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let raw = line.map_err(|e| GraphError::Parse {
            line: idx + 1,
            reason: format!("I/O error: {e}"),
        })?;
        match parse_dimacs_line(idx + 1, &raw, node_count)? {
            DimacsLine::Skip => {}
            DimacsLine::Problem { nodes, edges } => {
                node_count = Some(nodes);
                declared_edges = edges;
                writer = Some(ShardWriter::create(&dir, nodes, nodes_per_shard)?);
            }
            DimacsLine::Edge(u, v) => {
                writer
                    .as_mut()
                    .expect("the lexer rejects edge lines before the problem line")
                    .add_edge(u, v);
            }
        }
    }
    let writer = writer.ok_or(GraphError::Parse {
        line: 0,
        reason: "missing problem line".into(),
    })?;
    let summary = writer.finish()?;
    if summary.edge_count != declared_edges {
        return Err(GraphError::EdgeCountMismatch {
            declared: declared_edges,
            found: summary.edge_count,
        }
        .into());
    }
    Ok(summary)
}

/// Round-trips a graph through the edge-list format (serialise then parse).
/// Exposed for tests and as a self-check utility.
///
/// # Errors
///
/// Returns any parse error; a correct implementation never produces one.
pub fn round_trip(g: &Graph) -> Result<Graph, GraphError> {
    parse_edge_list(&to_edge_list_string(g))
}

/// Builds a graph from an iterator of `(u, v)` pairs without a declared
/// node count (count = max endpoint + 1). Convenience for hand-written
/// test fixtures.
///
/// # Errors
///
/// Returns the usual construction errors.
pub fn from_pairs<I>(pairs: I) -> Result<Graph, GraphError>
where
    I: IntoIterator<Item = (NodeId, NodeId)>,
{
    let edges: Vec<(NodeId, NodeId)> = pairs.into_iter().collect();
    let n = edges
        .iter()
        .map(|&(u, v)| u.max(v) as usize + 1)
        .max()
        .unwrap_or(0);
    let mut b = GraphBuilder::new(n);
    for (u, v) in edges {
        b.add_edge(u, v)?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn round_trip_preserves_graph() {
        let mut rng = SmallRng::seed_from_u64(42);
        let g = generators::gnp(40, 0.2, &mut rng);
        assert_eq!(round_trip(&g).unwrap(), g);
    }

    #[test]
    fn dimacs_round_trip_preserves_graph() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = generators::gnp(30, 0.3, &mut rng);
        assert_eq!(parse_dimacs(&to_dimacs(&g)).unwrap(), g);
    }

    #[test]
    fn dimacs_round_trip_preserves_isolated_nodes() {
        let g = Graph::from_edges(8, [(0, 7)]).unwrap();
        let h = parse_dimacs(&to_dimacs(&g)).unwrap();
        assert_eq!(h.node_count(), 8);
        assert_eq!(h.edge_count(), 1);
    }

    #[test]
    fn dimacs_tolerates_duplicates_and_col_format() {
        let g = parse_dimacs("p col 3 4\ne 1 2\ne 2 1\ne 2 3\ne 2 3\n").unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn dimacs_dedupes_silently_and_round_trips() {
        // Duplicate and reversed-duplicate edge lines collapse to one edge
        // each; serialising the result and re-parsing is the identity.
        let g = parse_dimacs("p edge 4 5\ne 1 2\ne 2 1\ne 2 3\ne 2 3\ne 3 4\n").unwrap();
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(2, 3));
        assert_eq!(parse_dimacs(&to_dimacs(&g)).unwrap(), g);
    }

    #[test]
    fn strict_dimacs_round_trips_generated_instances() {
        // to_dimacs always writes the deduplicated count, so its output
        // must satisfy the strict parser for any graph.
        let mut rng = SmallRng::seed_from_u64(13);
        for g in [
            generators::gnp(40, 0.25, &mut rng),
            generators::path(9),
            Graph::empty(5),
            Graph::empty(0),
            generators::complete(7),
        ] {
            assert_eq!(parse_dimacs_strict(&to_dimacs(&g)).unwrap(), g);
        }
    }

    #[test]
    fn strict_dimacs_rejects_header_mismatch() {
        // Duplicates shrink the real count below the declared m …
        let err = parse_dimacs_strict("p edge 3 3\ne 1 2\ne 2 1\ne 2 3\n").unwrap_err();
        assert_eq!(
            err,
            GraphError::EdgeCountMismatch {
                declared: 3,
                found: 2
            }
        );
        // … an undercount is a mismatch too …
        let err = parse_dimacs_strict("p edge 3 1\ne 1 2\ne 2 3\n").unwrap_err();
        assert_eq!(
            err,
            GraphError::EdgeCountMismatch {
                declared: 1,
                found: 2
            }
        );
        // … and an exact header passes, duplicates included.
        let g = parse_dimacs_strict("p edge 3 2\ne 1 2\ne 2 1\ne 2 3\ne 3 2\n").unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn strict_dimacs_keeps_the_lenient_errors() {
        // Structural errors surface before the count check, unchanged.
        assert!(matches!(
            parse_dimacs_strict("p edge 3 1\ne 2 2\n"),
            Err(GraphError::SelfLoop { node: 1 })
        ));
        assert!(matches!(
            parse_dimacs_strict(""),
            Err(GraphError::Parse { .. })
        ));
        // And the lenient parser still accepts what strict rejects.
        let text = "p edge 3 3\ne 1 2\ne 2 1\ne 2 3\n";
        assert!(parse_dimacs(text).is_ok());
        assert!(parse_dimacs_strict(text).is_err());
    }

    #[test]
    fn dimacs_rejects_self_loop_with_named_error() {
        let err = parse_dimacs("p edge 3 1\ne 2 2\n").unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: 1 }); // 0-indexed node
                                                           // A later self-loop is still caught, after valid lines.
        let err = parse_dimacs("p edge 3 2\ne 1 2\ne 3 3\n").unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: 2 });
    }

    #[test]
    fn dimacs_rejects_header_without_edge_count() {
        let err = parse_dimacs("p edge 3\ne 1 2\n").unwrap_err();
        match err {
            GraphError::Parse { line, reason } => {
                assert_eq!(line, 1);
                assert!(reason.contains("edge count"), "{reason}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(parse_dimacs("p edge 3 x\n").is_err()); // non-numeric m
    }

    #[test]
    fn dimacs_rejects_malformed_input() {
        assert!(parse_dimacs("").is_err()); // no problem line
        assert!(parse_dimacs("e 1 2\np edge 3 1\n").is_err()); // edge first
        assert!(parse_dimacs("p edge 3 1\np edge 3 1\n").is_err()); // duplicate p
        assert!(parse_dimacs("p matrix 3 1\n").is_err()); // unknown format
        assert!(parse_dimacs("p edge 3 1\ne 0 2\n").is_err()); // 0 endpoint
        assert!(parse_dimacs("p edge 3 1\ne 1 4\n").is_err()); // out of range
        assert!(parse_dimacs("p edge 3 1\ne 1\n").is_err()); // one endpoint
        assert!(parse_dimacs("p edge 3 1\nx 1 2\n").is_err()); // unknown line
        assert!(parse_dimacs("p edge x 1\n").is_err()); // bad count
    }

    #[test]
    fn dimacs_error_reports_line_number() {
        let err = parse_dimacs("c fine\np edge 3 1\ne 1 9\n").unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn dimacs_empty_graph() {
        let g = parse_dimacs("p edge 0 0\n").unwrap();
        assert!(g.is_empty());
        assert!(to_dimacs(&g).contains("p edge 0 0"));
    }

    #[test]
    fn round_trip_preserves_isolated_nodes() {
        let g = Graph::from_edges(10, [(0, 1)]).unwrap();
        let h = round_trip(&g).unwrap();
        assert_eq!(h.node_count(), 10);
    }

    #[test]
    fn parse_ignores_comments_and_blanks() {
        let g = parse_edge_list("# header\n\nnodes 3\n# edge next\n0 2\n").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn parse_without_header_infers_count() {
        let g = parse_edge_list("0 1\n1 4\n").unwrap();
        assert_eq!(g.node_count(), 5);
    }

    #[test]
    fn parse_empty_input() {
        let g = parse_edge_list("").unwrap();
        assert!(g.is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = parse_edge_list("0 x\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = parse_edge_list("1 2 3\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = parse_edge_list("nodes many\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn parse_rejects_self_loop() {
        let err = parse_edge_list("3 3\n").unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: 3 });
    }

    /// Unique temp shard directory, removed on drop.
    struct StreamDir(std::path::PathBuf);

    impl StreamDir {
        fn new(label: &str) -> Self {
            static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let dir = std::env::temp_dir().join(format!(
                "mis-graph-dimacs-{label}-{}-{n}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            StreamDir(dir)
        }
    }

    impl Drop for StreamDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn stream(text: &str, dir: &StreamDir) -> Result<ShardedGraphSummary, StreamError> {
        parse_dimacs_streaming(io::BufReader::new(text.as_bytes()), &dir.0, 64)
    }

    #[test]
    fn streaming_dimacs_round_trips_generated_instances() {
        let mut rng = SmallRng::seed_from_u64(17);
        for (label, g) in [
            ("gnp", generators::gnp(120, 0.1, &mut rng)),
            ("torus", generators::torus2d(9, 9)),
            ("edgeless", Graph::empty(70)),
            ("empty", Graph::empty(0)),
        ] {
            let dir = StreamDir::new(label);
            let summary = stream(&to_dimacs(&g), &dir).unwrap();
            assert_eq!(summary.node_count, g.node_count(), "{label}");
            assert_eq!(summary.edge_count, g.edge_count(), "{label}");
            let back = crate::CompressedGraph::load_sharded(&dir.0).unwrap();
            assert_eq!(back, crate::CompressedGraph::from_view(&g), "{label}");
        }
    }

    #[test]
    fn streaming_dimacs_dedupes_then_checks_header() {
        // Exact post-dedup header: accepted.
        let dir = StreamDir::new("dedup-ok");
        let summary = stream("p edge 3 2\ne 1 2\ne 2 1\ne 2 3\ne 3 2\n", &dir).unwrap();
        assert_eq!(summary.edge_count, 2);
        // Header counting the duplicates: strict mismatch.
        let dir = StreamDir::new("dedup-bad");
        assert!(matches!(
            stream("p edge 3 3\ne 1 2\ne 2 1\ne 2 3\n", &dir),
            Err(StreamError::Graph(GraphError::EdgeCountMismatch {
                declared: 3,
                found: 2
            }))
        ));
    }

    #[test]
    fn streaming_dimacs_rejects_malformed_input() {
        for (label, text) in [
            ("no-problem", ""),
            ("edge-first", "e 1 2\np edge 3 1\n"),
            ("dup-problem", "p edge 3 1\np edge 3 1\n"),
            ("bad-format", "p matrix 3 1\n"),
            ("zero-endpoint", "p edge 3 1\ne 0 2\n"),
            ("out-of-range", "p edge 3 1\ne 1 4\n"),
            ("one-endpoint", "p edge 3 1\ne 1\n"),
            ("self-loop", "p edge 3 1\ne 2 2\n"),
            ("unknown-line", "p edge 3 1\nx 1 2\n"),
            ("bad-count", "p edge x 1\n"),
        ] {
            let dir = StreamDir::new(label);
            let err = stream(text, &dir).unwrap_err();
            assert!(matches!(err, StreamError::Graph(_)), "{label}: {err}");
            // The in-RAM strict parser must agree line for line.
            assert!(parse_dimacs_strict(text).is_err(), "{label}");
        }
    }

    #[test]
    fn streaming_dimacs_reports_line_numbers_like_in_ram_parser() {
        let text = "c fine\np edge 3 1\ne 1 9\n";
        let dir = StreamDir::new("lines");
        match stream(text, &dir) {
            Err(StreamError::Graph(GraphError::Parse { line, .. })) => assert_eq!(line, 3),
            other => panic!("unexpected result {other:?}"),
        }
        match parse_dimacs(text) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("unexpected result {other:?}"),
        }
    }

    #[test]
    fn dot_output_shape() {
        let g = generators::path(3);
        let dot = to_dot(&g, &[1]);
        assert!(dot.contains("1 [style=filled"));
        assert!(dot.contains("0 -- 1;"));
        assert!(dot.contains("1 -- 2;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn read_edge_list_from_reader() {
        let data = b"nodes 2\n0 1\n";
        let g = read_edge_list(&data[..]).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn from_pairs_infers_size() {
        let g = from_pairs([(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.node_count(), 3);
        assert!(from_pairs([]).unwrap().is_empty());
    }
}
