//! Tree generators.

use rand::Rng;

use crate::{Graph, GraphBuilder, NodeId};

/// Samples a uniformly random labelled tree on `n` nodes via a random
/// Prüfer sequence.
///
/// # Panics
///
/// Panics if `n` exceeds the `u32` index space.
///
/// # Examples
///
/// ```
/// use mis_graph::generators::random_tree;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(11);
/// let t = random_tree(50, &mut rng);
/// assert_eq!(t.edge_count(), 49);
/// ```
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    if n <= 1 {
        return Graph::empty(n);
    }
    if n == 2 {
        return Graph::from_edges(2, [(0, 1)]).expect("valid edge");
    }
    let prufer: Vec<NodeId> = (0..n - 2)
        .map(|_| rng.random_range(0..n as NodeId))
        .collect();
    prufer_decode(n, &prufer)
}

/// Decodes a Prüfer sequence of length `n - 2` into its tree.
fn prufer_decode(n: usize, prufer: &[NodeId]) -> Graph {
    debug_assert_eq!(prufer.len(), n - 2);
    let mut degree = vec![1u32; n];
    for &v in prufer {
        degree[v as usize] += 1;
    }
    let mut b = GraphBuilder::new(n);
    // Min-heap of current leaves.
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<NodeId>> = (0..n as NodeId)
        .filter(|&v| degree[v as usize] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &v in prufer {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("tree invariant");
        b.add_edge(leaf.min(v), leaf.max(v)).expect("valid edge");
        degree[v as usize] -= 1;
        if degree[v as usize] == 1 {
            leaves.push(std::cmp::Reverse(v));
        }
    }
    let std::cmp::Reverse(a) = leaves.pop().expect("two leaves remain");
    let std::cmp::Reverse(c) = leaves.pop().expect("two leaves remain");
    b.add_edge(a.min(c), a.max(c)).expect("valid edge");
    b.build()
}

/// The complete `arity`-ary tree of the given `depth` (depth 0 is a single
/// root). Node 0 is the root; children of `v` are contiguous.
///
/// # Panics
///
/// Panics if `arity == 0` with nonzero depth, or the node count exceeds the
/// `u32` index space.
///
/// # Examples
///
/// ```
/// let t = mis_graph::generators::balanced_tree(2, 3);
/// assert_eq!(t.node_count(), 15); // 1 + 2 + 4 + 8
/// assert_eq!(t.edge_count(), 14);
/// ```
#[must_use]
pub fn balanced_tree(arity: usize, depth: usize) -> Graph {
    if depth > 0 {
        assert!(arity >= 1, "arity must be positive for non-trivial depth");
    }
    // Count nodes: sum of arity^level.
    let mut count = 1usize;
    let mut level_size = 1usize;
    for _ in 0..depth {
        level_size = level_size
            .checked_mul(arity)
            .expect("balanced tree too large");
        count = count
            .checked_add(level_size)
            .expect("balanced tree too large");
    }
    let mut b = GraphBuilder::new(count);
    // Parent of node v > 0 in a complete arity-ary tree: (v - 1) / arity.
    for v in 1..count as NodeId {
        let parent = (v - 1) / arity as NodeId;
        b.add_canonical_edge_unchecked(parent, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn random_tree_is_a_tree() {
        for seed in 0..10 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let t = random_tree(40, &mut rng);
            assert_eq!(t.edge_count(), 39);
            assert_eq!(ops::connected_components(&t).len(), 1, "seed {seed}");
        }
    }

    #[test]
    fn tiny_trees() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(random_tree(0, &mut rng).node_count(), 0);
        assert_eq!(random_tree(1, &mut rng).edge_count(), 0);
        assert_eq!(random_tree(2, &mut rng).edge_count(), 1);
        assert_eq!(random_tree(3, &mut rng).edge_count(), 2);
    }

    #[test]
    fn prufer_decode_known_sequence() {
        // Prüfer sequence [3, 3, 3, 4] on 6 nodes: star-ish tree.
        let t = prufer_decode(6, &[3, 3, 3, 4]);
        assert_eq!(t.degree(3), 4);
        assert_eq!(t.degree(4), 2);
        assert_eq!(t.edge_count(), 5);
    }

    #[test]
    fn balanced_tree_shapes() {
        let t = balanced_tree(3, 2);
        assert_eq!(t.node_count(), 13); // 1 + 3 + 9
        assert_eq!(t.degree(0), 3);
        assert_eq!(t.degree(1), 4); // parent + 3 children
        assert_eq!(t.degree(12), 1); // leaf

        assert_eq!(balanced_tree(5, 0).node_count(), 1);
        assert_eq!(balanced_tree(1, 4).node_count(), 5); // a path
    }

    #[test]
    fn random_trees_vary_with_seed() {
        let t1 = random_tree(30, &mut SmallRng::seed_from_u64(1));
        let t2 = random_tree(30, &mut SmallRng::seed_from_u64(2));
        assert_ne!(t1, t2);
    }
}
