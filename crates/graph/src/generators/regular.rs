//! Random regular graphs via the pairing (configuration) model.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Graph, GraphBuilder, NodeId};

/// Samples a random `d`-regular graph on `n` nodes using the pairing model
/// with rejection: half-edges are paired uniformly and the pairing is
/// retried whenever it produces a self-loop or parallel edge.
///
/// For constant `d` the acceptance probability is `≈ e^{-(d²-1)/4}`, so the
/// expected number of retries is modest for `d ≲ 10`; the function aborts
/// after a large retry budget rather than looping forever.
///
/// # Panics
///
/// Panics if `n·d` is odd, `d ≥ n`, the retry budget is exhausted
/// (practically unreachable for `d ≲ 12`), or `n` exceeds the `u32` index
/// space.
///
/// # Examples
///
/// ```
/// use mis_graph::generators::random_regular;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(3);
/// let g = random_regular(30, 3, &mut rng);
/// for v in g.nodes() {
///     assert_eq!(g.degree(v), 3);
/// }
/// ```
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!(
        (n * d).is_multiple_of(2),
        "n·d must be even for a d-regular graph"
    );
    assert!(
        d < n || (d == 0 && n == 0),
        "degree must be below node count"
    );
    if d == 0 {
        return Graph::empty(n);
    }
    const MAX_ATTEMPTS: usize = 10_000;
    let mut stubs: Vec<NodeId> = (0..n as NodeId)
        .flat_map(|v| std::iter::repeat_n(v, d))
        .collect();
    'attempt: for _ in 0..MAX_ATTEMPTS {
        stubs.shuffle(rng);
        // detlint: allow(D01) -- membership-only multi-edge check, never iterated
        let mut seen = std::collections::HashSet::with_capacity(n * d / 2);
        let mut builder = GraphBuilder::new(n);
        builder.reserve(n * d / 2);
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v {
                continue 'attempt;
            }
            let e = (u.min(v), u.max(v));
            if !seen.insert(e) {
                continue 'attempt;
            }
            builder.add_canonical_edge_unchecked(e.0, e.1);
        }
        return builder.build();
    }
    panic!("pairing model failed to produce a simple {d}-regular graph on {n} nodes");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn regular_degrees_hold() {
        for (n, d) in [(10, 2), (20, 3), (16, 4), (50, 5)] {
            let mut rng = SmallRng::seed_from_u64((n * d) as u64);
            let g = random_regular(n, d, &mut rng);
            assert_eq!(g.node_count(), n);
            for v in g.nodes() {
                assert_eq!(g.degree(v), d, "n={n} d={d}");
            }
        }
    }

    #[test]
    fn zero_degree() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = random_regular(8, 0, &mut rng);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn two_regular_graphs_are_unions_of_cycles() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = random_regular(24, 2, &mut rng);
        for comp in ops::connected_components(&g) {
            assert!(comp.len() >= 3, "2-regular component must be a cycle");
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_total_degree_panics() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = random_regular(5, 3, &mut rng);
    }

    #[test]
    #[should_panic(expected = "below node count")]
    fn degree_too_large_panics() {
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = random_regular(4, 4, &mut rng);
    }

    #[test]
    fn deterministic_for_seed() {
        let g1 = random_regular(20, 3, &mut SmallRng::seed_from_u64(5));
        let g2 = random_regular(20, 3, &mut SmallRng::seed_from_u64(5));
        assert_eq!(g1, g2);
    }
}
