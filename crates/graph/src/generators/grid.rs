//! Grid and lattice topologies.

use crate::{Graph, GraphBuilder, NodeId};

/// The `rows × cols` rectangular grid; node `(r, c)` is `r * cols + c` and
/// is adjacent to its 4-neighbourhood.
///
/// §5 of the paper reports ≈1.1 mean beeps per node on rectangular grids
/// for the feedback algorithm; this is that topology.
///
/// # Panics
///
/// Panics if `rows * cols` exceeds the `u32` index space.
///
/// # Examples
///
/// ```
/// let g = mis_graph::generators::grid2d(3, 4);
/// assert_eq!(g.node_count(), 12);
/// assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // horizontal + vertical
/// ```
#[must_use]
pub fn grid2d(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::new(n);
    b.reserve(2 * n);
    grid2d_edges(rows, cols, |u, v| {
        b.add_canonical_edge_unchecked(u, v);
    });
    b.build()
}

/// Streaming form of [`grid2d`]: emits each edge `(u, v)` with `u < v`
/// through `emit` in O(1) memory, for feeding the scale tier's
/// [`ShardWriter`](crate::ShardWriter) without materialising the grid.
pub fn grid2d_edges<F: FnMut(NodeId, NodeId)>(rows: usize, cols: usize, mut emit: F) {
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                emit(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                emit(id(r, c), id(r + 1, c));
            }
        }
    }
}

/// The `rows × cols` torus: a grid with wrap-around edges, so every node
/// has degree exactly 4.
///
/// # Panics
///
/// Panics if `rows < 3` or `cols < 3` (smaller tori are not simple graphs)
/// or the node count exceeds the `u32` index space.
#[must_use]
pub fn torus2d(rows: usize, cols: usize) -> Graph {
    assert!(
        rows >= 3 && cols >= 3,
        "torus requires both dimensions at least 3"
    );
    let n = rows * cols;
    let mut b = GraphBuilder::new(n);
    b.reserve(2 * n);
    torus2d_edges(rows, cols, |u, v| {
        b.add_edge(u, v).expect("valid edge");
    });
    b.build()
}

/// Streaming form of [`torus2d`]: emits each edge `(u, v)` with `u < v`
/// through `emit` in O(1) memory — the 4-regular workhorse of the scale
/// tier's 10M-node points.
///
/// # Panics
///
/// Panics if `rows < 3` or `cols < 3`.
pub fn torus2d_edges<F: FnMut(NodeId, NodeId)>(rows: usize, cols: usize, mut emit: F) {
    assert!(
        rows >= 3 && cols >= 3,
        "torus requires both dimensions at least 3"
    );
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    for r in 0..rows {
        for c in 0..cols {
            let right = id(r, (c + 1) % cols);
            let down = id((r + 1) % rows, c);
            let me = id(r, c);
            emit(me.min(right), me.max(right));
            emit(me.min(down), me.max(down));
        }
    }
}

/// A `rows × cols` hexagonal lattice in odd-r offset coordinates: each
/// interior cell touches 6 neighbours, as in an epithelial cell sheet.
///
/// This models the hexagonally packed proneural cluster of the fly from
/// which SOP cells are selected (Figure 1B of the paper): running the
/// feedback algorithm on it yields the biological “fine-grained pattern” —
/// no two adjacent SOPs, every cell adjacent to an SOP.
///
/// # Panics
///
/// Panics if `rows * cols` exceeds the `u32` index space.
///
/// # Examples
///
/// ```
/// let g = mis_graph::generators::hex_grid(4, 4);
/// assert_eq!(g.node_count(), 16);
/// assert_eq!(g.max_degree(), 6);
/// ```
#[must_use]
pub fn hex_grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::new(n);
    b.reserve(3 * n);
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    for r in 0..rows {
        for c in 0..cols {
            // East neighbour.
            if c + 1 < cols {
                b.add_canonical_edge_unchecked(id(r, c), id(r, c + 1));
            }
            // The two downward neighbours (odd-r offset layout).
            if r + 1 < rows {
                b.add_canonical_edge_unchecked(id(r, c), id(r + 1, c));
                if r % 2 == 1 {
                    // odd rows are shifted right: second neighbour is c + 1
                    if c + 1 < cols {
                        b.add_canonical_edge_unchecked(id(r, c), id(r + 1, c + 1));
                    }
                } else if c > 0 {
                    // even rows: second neighbour is c - 1
                    b.add_canonical_edge_unchecked(
                        id(r + 1, c - 1).min(id(r, c)),
                        id(r, c).max(id(r + 1, c - 1)),
                    );
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_edge_count_formula() {
        for (r, c) in [(1, 1), (1, 5), (3, 3), (4, 7)] {
            let g = grid2d(r, c);
            assert_eq!(g.node_count(), r * c);
            assert_eq!(g.edge_count(), r * (c - 1) + (r - 1) * c);
        }
    }

    #[test]
    fn grid_corner_and_interior_degrees() {
        let g = grid2d(5, 5);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(2), 3); // edge
        assert_eq!(g.degree(12), 4); // centre
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus2d(4, 5);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4, "node {v}");
        }
        assert_eq!(g.edge_count(), 2 * 20);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn small_torus_panics() {
        let _ = torus2d(2, 5);
    }

    #[test]
    fn edge_emitters_match_in_ram_construction() {
        let g = grid2d(6, 9);
        let mut b = crate::GraphBuilder::new(54);
        grid2d_edges(6, 9, |u, v| {
            assert!(u < v);
            b.add_canonical_edge_unchecked(u, v);
        });
        assert_eq!(b.build(), g);

        let t = torus2d(5, 7);
        let mut b = crate::GraphBuilder::new(35);
        torus2d_edges(5, 7, |u, v| {
            assert!(u < v);
            b.add_edge(u, v).unwrap();
        });
        assert_eq!(b.build(), t);
    }

    #[test]
    fn hex_grid_degrees() {
        // In a big hex grid interior nodes have degree 6.
        let g = hex_grid(6, 6);
        assert_eq!(g.max_degree(), 6);
        // Row 1 (odd, shifted), column 2 is interior.
        let v = (6 + 2) as u32;
        assert_eq!(g.degree(v), 6);
    }

    #[test]
    fn hex_grid_small_cases() {
        assert_eq!(hex_grid(1, 1).edge_count(), 0);
        assert_eq!(hex_grid(1, 4).edge_count(), 3); // just a path
        let g = hex_grid(2, 2);
        // Edges: (0,1),(2,3) east; (0,2),(1,3) down; row0 even: (1 -> below-left 2)
        assert_eq!(g.edge_count(), 5);
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn hex_grid_symmetric_adjacency() {
        let g = hex_grid(5, 7);
        for v in g.nodes() {
            for &u in g.neighbors(v) {
                assert!(g.has_edge(u, v));
                assert_ne!(u, v);
            }
        }
    }
}
