//! Random geometric graphs (ad-hoc wireless / sensor networks).

use rand::Rng;

use crate::{Graph, GraphBuilder, NodeId};

/// Samples a random geometric graph: `n` points uniform in the unit square,
/// with an edge between any pair at Euclidean distance `≤ radius`.
///
/// This is the standard model of an ad-hoc wireless sensor network — the
/// application domain §6 of the paper highlights for beeping MIS
/// (clusterhead election with 1-bit radio signals).
///
/// Runs in expected `O(n + m)` time using cell bucketing.
///
/// # Panics
///
/// Panics if `radius` is negative or NaN, or `n` exceeds the `u32` index
/// space.
///
/// # Examples
///
/// ```
/// use mis_graph::generators::random_geometric;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(5);
/// let g = random_geometric(200, 0.12, &mut rng);
/// assert_eq!(g.node_count(), 200);
/// ```
pub fn random_geometric<R: Rng + ?Sized>(n: usize, radius: f64, rng: &mut R) -> Graph {
    random_geometric_with_positions(n, radius, rng).0
}

/// Like [`random_geometric`] but also returns the sampled positions, which
/// examples use for rendering the network.
///
/// # Panics
///
/// Panics under the same conditions as [`random_geometric`].
pub fn random_geometric_with_positions<R: Rng + ?Sized>(
    n: usize,
    radius: f64,
    rng: &mut R,
) -> (Graph, Vec<(f64, f64)>) {
    assert!(
        radius.is_finite() && radius >= 0.0,
        "radius must be a non-negative finite number"
    );
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
        .collect();
    let mut builder = GraphBuilder::new(n);
    if n == 0 || radius == 0.0 {
        return (builder.build(), positions);
    }

    // Bucket points into cells of side `radius`; only same-or-adjacent cells
    // can contain neighbours.
    let cells_per_side = ((1.0 / radius).floor() as usize).clamp(1, n.max(1));
    let cell_of = |p: (f64, f64)| {
        let cx = ((p.0 * cells_per_side as f64) as usize).min(cells_per_side - 1);
        let cy = ((p.1 * cells_per_side as f64) as usize).min(cells_per_side - 1);
        (cx, cy)
    };
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); cells_per_side * cells_per_side];
    for (i, &p) in positions.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        buckets[cy * cells_per_side + cx].push(i as NodeId);
    }
    let r2 = radius * radius;
    let close = |a: NodeId, b: NodeId| {
        let (xa, ya) = positions[a as usize];
        let (xb, yb) = positions[b as usize];
        let (dx, dy) = (xa - xb, ya - yb);
        dx * dx + dy * dy <= r2
    };
    for cy in 0..cells_per_side {
        for cx in 0..cells_per_side {
            let here = &buckets[cy * cells_per_side + cx];
            // Within the cell.
            for (i, &a) in here.iter().enumerate() {
                for &b in &here[i + 1..] {
                    if close(a, b) {
                        builder.add_canonical_edge_unchecked(a.min(b), a.max(b));
                    }
                }
            }
            // Against the 4 forward-neighbouring cells (E, SW, S, SE) so each
            // unordered cell pair is examined once.
            let forward = [(1i64, 0i64), (-1, 1), (0, 1), (1, 1)];
            for (dx, dy) in forward {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells_per_side as i64 || ny >= cells_per_side as i64 {
                    continue;
                }
                let there = &buckets[ny as usize * cells_per_side + nx as usize];
                for &a in here {
                    for &b in there {
                        if close(a, b) {
                            builder.add_canonical_edge_unchecked(a.min(b), a.max(b));
                        }
                    }
                }
            }
        }
    }
    (builder.build(), positions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    /// Brute-force reference implementation.
    fn brute(positions: &[(f64, f64)], radius: f64) -> Vec<(NodeId, NodeId)> {
        let r2 = radius * radius;
        let mut edges = Vec::new();
        for i in 0..positions.len() {
            for j in (i + 1)..positions.len() {
                let (dx, dy) = (
                    positions[i].0 - positions[j].0,
                    positions[i].1 - positions[j].1,
                );
                if dx * dx + dy * dy <= r2 {
                    edges.push((i as NodeId, j as NodeId));
                }
            }
        }
        edges
    }

    #[test]
    fn matches_brute_force() {
        for seed in 0..5 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let (g, pos) = random_geometric_with_positions(150, 0.15, &mut rng);
            let expected = brute(&pos, 0.15);
            assert_eq!(g.edge_count(), expected.len(), "seed {seed}");
            for (u, v) in expected {
                assert!(g.has_edge(u, v), "missing edge {u}-{v} at seed {seed}");
            }
        }
    }

    #[test]
    fn zero_radius_has_no_edges() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = random_geometric(50, 0.0, &mut rng);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn huge_radius_is_complete() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = random_geometric(30, 2.0, &mut rng);
        assert_eq!(g.edge_count(), 30 * 29 / 2);
    }

    #[test]
    fn empty_graph() {
        let mut rng = SmallRng::seed_from_u64(3);
        let (g, pos) = random_geometric_with_positions(0, 0.1, &mut rng);
        assert!(g.is_empty());
        assert!(pos.is_empty());
    }

    #[test]
    fn positions_are_in_unit_square() {
        let mut rng = SmallRng::seed_from_u64(4);
        let (_, pos) = random_geometric_with_positions(100, 0.1, &mut rng);
        for (x, y) in pos {
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn negative_radius_panics() {
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = random_geometric(10, -0.5, &mut rng);
    }
}
