//! Graph generators for every topology used in the paper's experiments.
//!
//! | Generator | Role in the paper |
//! |-----------|-------------------|
//! | [`gnp`], [`gnm`] | `G(n, ½)` random graphs of Figures 3 and 5 |
//! | [`grid2d`], [`torus2d`] | rectangular grids of §5 (“around 1.1 beeps”) |
//! | [`theorem1_family`], [`disjoint_cliques`] | the Theorem 1 lower-bound family |
//! | [`hex_grid`] | hexagonally packed fly epithelium (Figure 1B) |
//! | [`random_geometric`] | ad-hoc sensor networks (§6 applications) |
//! | [`complete`], [`path`], [`cycle`], [`star`], [`complete_bipartite`], [`wheel`] | classic fixed topologies for tests and edge cases |
//! | [`random_tree`], [`balanced_tree`] | sparse hierarchical topologies |
//! | [`random_regular`] | degree-homogeneous graphs |
//! | [`hypercube`] | structured logarithmic-diameter graphs |
//! | [`watts_strogatz`], [`barabasi_albert`], [`planted_partition`], [`connected_caveman`] | small-world / scale-free / community workloads for the robustness extensions (§6) |
//!
//! All random generators take an explicit `&mut impl Rng` so experiments are
//! reproducible from a master seed.
//!
//! The scale tier's streaming variants — [`gnp_edges`], [`grid2d_edges`],
//! [`torus2d_edges`], [`barabasi_albert_edges`] — emit the same edge
//! sequence through a callback instead of materialising a `Graph`, so
//! 10M+-node topologies can be written shard-by-shard in bounded memory
//! (see [`crate::stream`]).

mod classic;
mod clique_union;
mod geometric;
mod gnp;
mod grid;
mod regular;
mod social;
mod trees;

pub use classic::{complete, complete_bipartite, cycle, path, star, wheel};
pub use clique_union::{disjoint_cliques, theorem1_family, theorem1_side_for_nodes};
pub use geometric::{random_geometric, random_geometric_with_positions};
pub use gnp::{gnm, gnp, gnp_edges};
pub use grid::{grid2d, grid2d_edges, hex_grid, torus2d, torus2d_edges};
pub use regular::random_regular;
pub use social::{
    barabasi_albert, barabasi_albert_edges, connected_caveman, planted_partition, watts_strogatz,
};
pub use trees::{balanced_tree, random_tree};

pub use classic::hypercube;
