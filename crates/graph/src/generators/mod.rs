//! Graph generators for every topology used in the paper's experiments.
//!
//! | Generator | Role in the paper |
//! |-----------|-------------------|
//! | [`gnp`], [`gnm`] | `G(n, ½)` random graphs of Figures 3 and 5 |
//! | [`grid2d`], [`torus2d`] | rectangular grids of §5 (“around 1.1 beeps”) |
//! | [`theorem1_family`], [`disjoint_cliques`] | the Theorem 1 lower-bound family |
//! | [`hex_grid`] | hexagonally packed fly epithelium (Figure 1B) |
//! | [`random_geometric`] | ad-hoc sensor networks (§6 applications) |
//! | [`complete`], [`path`], [`cycle`], [`star`], [`complete_bipartite`], [`wheel`] | classic fixed topologies for tests and edge cases |
//! | [`random_tree`], [`balanced_tree`] | sparse hierarchical topologies |
//! | [`random_regular`] | degree-homogeneous graphs |
//! | [`hypercube`] | structured logarithmic-diameter graphs |
//! | [`watts_strogatz`], [`barabasi_albert`], [`planted_partition`], [`connected_caveman`] | small-world / scale-free / community workloads for the robustness extensions (§6) |
//!
//! All random generators take an explicit `&mut impl Rng` so experiments are
//! reproducible from a master seed.

mod classic;
mod clique_union;
mod geometric;
mod gnp;
mod grid;
mod regular;
mod social;
mod trees;

pub use classic::{complete, complete_bipartite, cycle, path, star, wheel};
pub use clique_union::{disjoint_cliques, theorem1_family, theorem1_side_for_nodes};
pub use geometric::{random_geometric, random_geometric_with_positions};
pub use gnp::{gnm, gnp};
pub use grid::{grid2d, hex_grid, torus2d};
pub use regular::random_regular;
pub use social::{barabasi_albert, connected_caveman, planted_partition, watts_strogatz};
pub use trees::{balanced_tree, random_tree};

pub use classic::hypercube;
