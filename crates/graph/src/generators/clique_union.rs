//! The Theorem 1 lower-bound family: disjoint unions of cliques.

use crate::{Graph, GraphBuilder, NodeId};

/// A disjoint union of cliques with the given sizes.
///
/// Size-0 entries are ignored; size-1 entries contribute isolated nodes.
///
/// # Panics
///
/// Panics if the total node count exceeds the `u32` index space.
///
/// # Examples
///
/// ```
/// use mis_graph::generators::disjoint_cliques;
///
/// let g = disjoint_cliques(&[3, 2, 1]);
/// assert_eq!(g.node_count(), 6);
/// assert_eq!(g.edge_count(), 3 + 1 + 0);
/// ```
#[must_use]
pub fn disjoint_cliques(sizes: &[usize]) -> Graph {
    let n: usize = sizes.iter().sum();
    let mut b = GraphBuilder::new(n);
    let mut base = 0usize;
    for &s in sizes {
        for i in 0..s {
            for j in (i + 1)..s {
                b.add_canonical_edge_unchecked((base + i) as NodeId, (base + j) as NodeId);
            }
        }
        base += s;
    }
    b.build()
}

/// The explicit graph family from Theorem 1 of the paper: `side` disjoint
/// copies of the complete graph `K_d`, for **each** `d = 1, …, side`.
///
/// With `side = m` the graph has `m · m(m+1)/2` nodes; the paper takes
/// `m = n^{1/3}` so the family has `O(n)` nodes. On this family, *any*
/// globally preset probability sequence needs `Ω(log² n)` rounds to finish
/// with high probability, whereas the feedback algorithm needs only
/// `O(log n)`.
///
/// # Panics
///
/// Panics if the total node count exceeds the `u32` index space.
///
/// # Examples
///
/// ```
/// use mis_graph::generators::theorem1_family;
///
/// let g = theorem1_family(3);
/// // 3 copies each of K_1, K_2, K_3: 3·1 + 3·2 + 3·3 = 18 nodes.
/// assert_eq!(g.node_count(), 18);
/// ```
#[must_use]
pub fn theorem1_family(side: usize) -> Graph {
    let sizes: Vec<usize> = (1..=side)
        .flat_map(|d| std::iter::repeat_n(d, side))
        .collect();
    disjoint_cliques(&sizes)
}

/// The largest `side` parameter whose [`theorem1_family`] graph has at most
/// `max_nodes` nodes (so experiments can be parameterised by total size).
///
/// Returns 0 when even `side = 1` (a single node) does not fit.
///
/// # Examples
///
/// ```
/// use mis_graph::generators::{theorem1_family, theorem1_side_for_nodes};
///
/// let side = theorem1_side_for_nodes(1000);
/// assert!(theorem1_family(side).node_count() <= 1000);
/// assert!(theorem1_family(side + 1).node_count() > 1000);
/// ```
#[must_use]
pub fn theorem1_side_for_nodes(max_nodes: usize) -> usize {
    let mut side = 0usize;
    while (side + 1) * (side + 1) * (side + 2) / 2 <= max_nodes {
        side += 1;
    }
    side
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn disjoint_cliques_structure() {
        let g = disjoint_cliques(&[4, 3]);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 6 + 3);
        // No edges between components.
        assert!(!g.has_edge(0, 4));
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(4, 6));
    }

    #[test]
    fn empty_and_singleton_sizes() {
        let g = disjoint_cliques(&[0, 1, 0, 2]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    fn theorem1_node_count_formula() {
        for m in 1..=8 {
            let g = theorem1_family(m);
            assert_eq!(g.node_count(), m * m * (m + 1) / 2, "side {m}");
        }
    }

    #[test]
    fn theorem1_component_count() {
        // side m gives m components per clique size, m sizes => m² components.
        let g = theorem1_family(4);
        assert_eq!(ops::connected_components(&g).len(), 16);
    }

    #[test]
    fn theorem1_max_degree() {
        let g = theorem1_family(5);
        assert_eq!(g.max_degree(), 4); // largest clique K_5
    }

    #[test]
    fn side_for_nodes_is_tight() {
        for target in [1, 10, 100, 1_000, 10_000] {
            let m = theorem1_side_for_nodes(target);
            if m > 0 {
                assert!(theorem1_family(m).node_count() <= target);
            }
            assert!(theorem1_family(m + 1).node_count() > target);
        }
        assert_eq!(theorem1_side_for_nodes(0), 0);
    }
}
