//! Small-world, scale-free and community-structured generators.
//!
//! These families do not appear in the paper's evaluation, but they stress
//! the feedback algorithm in ways `G(n, p)` cannot: highly skewed degree
//! distributions (preferential attachment), strong clustering with long
//! shortcuts (small worlds), and mixed dense/sparse regions (planted
//! communities). §6 claims robustness across network structure; these are
//! the workloads the robustness and race extensions exercise it on.

use rand::Rng;

use crate::{Graph, GraphBuilder, NodeId};

/// Watts–Strogatz small-world graph: a ring lattice where every node links
/// to its `k/2` nearest neighbours on each side, with each edge rewired to
/// a uniform random endpoint with probability `beta`.
///
/// `beta = 0` is the pure lattice, `beta = 1` approaches `G(n, k/n)`.
/// Self-loops and duplicate edges are skipped during rewiring (leaving the
/// original edge in place), so the result is always simple with exactly
/// `n·k/2` edges.
///
/// # Panics
///
/// Panics if `k` is odd, `k ≥ n`, or `beta` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use mis_graph::generators::watts_strogatz;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let g = watts_strogatz(60, 6, 0.1, &mut rng);
/// assert_eq!(g.edge_count(), 60 * 3);
/// ```
pub fn watts_strogatz<R: Rng + ?Sized>(n: usize, k: usize, beta: f64, rng: &mut R) -> Graph {
    assert!(
        k.is_multiple_of(2),
        "k must be even (k/2 neighbours per side)"
    );
    assert!(k < n || (k == 0 && n == 0), "k must be below n");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * k / 2);
    // detlint: allow(D01) -- membership-only duplicate guard; `edges` carries the order
    let mut present = std::collections::HashSet::with_capacity(n * k / 2);
    let canon = |a: NodeId, b: NodeId| (a.min(b), a.max(b));
    for v in 0..n {
        for j in 1..=k / 2 {
            let u = ((v + j) % n) as NodeId;
            let e = canon(v as NodeId, u);
            edges.push(e);
            present.insert(e);
        }
    }
    for edge in &mut edges {
        if beta > 0.0 && rng.random_bool(beta) {
            let keep = edge.0;
            // Try a few times to find a fresh endpoint; give up (keep the
            // lattice edge) on pathological density.
            for _ in 0..8 {
                let candidate = rng.random_range(0..n as NodeId);
                let e = canon(keep, candidate);
                if candidate != keep && !present.contains(&e) {
                    present.remove(edge);
                    *edge = e;
                    present.insert(e);
                    break;
                }
            }
        }
    }
    let mut b = GraphBuilder::new(n);
    for (u, v) in edges {
        b.add_edge(u, v).expect("rewiring preserves validity");
    }
    b.build()
}

/// Barabási–Albert preferential attachment: starting from a small clique,
/// each new node attaches to `m` existing nodes chosen proportionally to
/// their degree, producing a scale-free (power-law) degree distribution.
///
/// # Panics
///
/// Panics if `m == 0` or `n < m + 1`.
///
/// # Examples
///
/// ```
/// use mis_graph::generators::barabasi_albert;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(2);
/// let g = barabasi_albert(200, 3, &mut rng);
/// assert_eq!(g.node_count(), 200);
/// assert!(g.max_degree() > 3 * g.min_degree().max(1));
/// ```
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    let mut builder = GraphBuilder::new(n);
    builder.reserve(m * (m + 1) / 2 + n.saturating_sub(m + 1) * m);
    barabasi_albert_edges(n, m, rng, |u, v| {
        builder.add_canonical_edge_unchecked(u, v);
    });
    builder.build()
}

/// Streaming form of [`barabasi_albert`]: emits each edge `(u, v)` with
/// `u < v` through `emit` instead of materialising a [`Graph`]. Memory is
/// the `O(n·m)` repeated-endpoints list the attachment process itself
/// needs — a fraction of the full adjacency — so the scale tier can feed
/// this into a [`ShardWriter`](crate::ShardWriter).
///
/// Targets of a new node are collected in draw order (not hash order), so
/// the emitted sequence — and therefore the generated graph — depends only
/// on the RNG, identically to [`barabasi_albert`].
///
/// # Panics
///
/// Panics if `m == 0` or `n < m + 1`.
pub fn barabasi_albert_edges<R, F>(n: usize, m: usize, rng: &mut R, mut emit: F)
where
    R: Rng + ?Sized,
    F: FnMut(NodeId, NodeId),
{
    assert!(m >= 1, "attachment count must be positive");
    assert!(n > m, "need at least m + 1 nodes");
    // Repeated-endpoints list: choosing a uniform element is
    // degree-proportional sampling.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    // Seed: clique on m + 1 nodes.
    for u in 0..=(m as NodeId) {
        for v in (u + 1)..=(m as NodeId) {
            emit(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    // Insertion-ordered target collection (a Vec, not a HashSet): hash-set
    // iteration order varies between processes, which fed back into
    // `endpoints` and made generated graphs nondeterministic for the same
    // seed. Draw order is RNG-determined, so this is reproducible.
    let mut targets: Vec<NodeId> = Vec::with_capacity(m);
    for v in (m + 1)..n {
        targets.clear();
        while targets.len() < m {
            let pick = endpoints[rng.random_range(0..endpoints.len())];
            if !targets.contains(&pick) {
                targets.push(pick);
            }
        }
        for &t in &targets {
            emit(t.min(v as NodeId), t.max(v as NodeId));
            endpoints.push(t);
            endpoints.push(v as NodeId);
        }
    }
}

/// Planted-partition (symmetric stochastic block model): `communities`
/// equal groups; within-group edges appear with probability `p_in`,
/// cross-group edges with `p_out`.
///
/// # Panics
///
/// Panics if `communities == 0` or either probability is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use mis_graph::generators::planted_partition;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(3);
/// let g = planted_partition(90, 3, 0.5, 0.02, &mut rng);
/// assert_eq!(g.node_count(), 90);
/// ```
pub fn planted_partition<R: Rng + ?Sized>(
    n: usize,
    communities: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> Graph {
    assert!(communities > 0, "need at least one community");
    assert!((0.0..=1.0).contains(&p_in), "p_in must be in [0, 1]");
    assert!((0.0..=1.0).contains(&p_out), "p_out must be in [0, 1]");
    let group = |v: usize| v * communities / n.max(1);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if group(u) == group(v) { p_in } else { p_out };
            if p >= 1.0 || (p > 0.0 && rng.random_bool(p)) {
                b.add_canonical_edge_unchecked(u as NodeId, v as NodeId);
            }
        }
    }
    b.build()
}

/// Connected caveman graph: `cliques` cliques of `size` nodes arranged in
/// a ring, with one edge between consecutive cliques. A clustered cousin
/// of the Theorem 1 family where the cliques are *not* independent
/// components.
///
/// # Panics
///
/// Panics if `cliques == 0`, `size == 0`, or a ring is requested with
/// fewer than one clique.
///
/// # Examples
///
/// ```
/// let g = mis_graph::generators::connected_caveman(5, 4);
/// assert_eq!(g.node_count(), 20);
/// assert!(mis_graph::ops::is_connected(&g));
/// ```
#[must_use]
pub fn connected_caveman(cliques: usize, size: usize) -> Graph {
    assert!(cliques > 0 && size > 0, "need non-empty cliques");
    let n = cliques * size;
    let mut b = GraphBuilder::new(n);
    for c in 0..cliques {
        let base = c * size;
        for i in 0..size {
            for j in (i + 1)..size {
                b.add_canonical_edge_unchecked((base + i) as NodeId, (base + j) as NodeId);
            }
        }
    }
    if cliques > 1 {
        // Bridge: last node of clique c to first node of clique c + 1.
        for c in 0..cliques {
            let from = (c * size + size - 1) as NodeId;
            let to = (((c + 1) % cliques) * size) as NodeId;
            if from != to {
                b.add_edge(from.min(to), from.max(to))
                    .expect("valid bridge");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn watts_strogatz_lattice_base_case() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = watts_strogatz(20, 4, 0.0, &mut rng);
        assert_eq!(g.edge_count(), 40);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(0, 19));
    }

    #[test]
    fn watts_strogatz_rewiring_keeps_edge_count() {
        let mut rng = SmallRng::seed_from_u64(2);
        for beta in [0.1, 0.5, 1.0] {
            let g = watts_strogatz(50, 6, beta, &mut rng);
            assert_eq!(g.edge_count(), 150, "beta {beta}");
        }
    }

    #[test]
    fn watts_strogatz_rewired_differs_from_lattice() {
        let lattice = watts_strogatz(40, 4, 0.0, &mut SmallRng::seed_from_u64(3));
        let rewired = watts_strogatz(40, 4, 0.5, &mut SmallRng::seed_from_u64(3));
        assert_ne!(lattice, rewired);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn watts_strogatz_odd_k_panics() {
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = watts_strogatz(10, 3, 0.1, &mut rng);
    }

    #[test]
    fn barabasi_albert_structure() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = barabasi_albert(300, 2, &mut rng);
        assert_eq!(g.node_count(), 300);
        // Seed clique K₃ has 3 edges; each later node adds exactly 2.
        assert_eq!(g.edge_count(), 3 + (300 - 3) * 2);
        assert!(ops::is_connected(&g));
        // Scale-free skew: the hub dwarfs the minimum degree.
        assert!(g.max_degree() >= 10 * g.min_degree());
    }

    #[test]
    fn barabasi_albert_min_degree_is_m() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = barabasi_albert(100, 3, &mut rng);
        assert!(g.min_degree() >= 3);
    }

    #[test]
    fn barabasi_albert_same_seed_is_deterministic() {
        // Regression: target sets were iterated in hash order, which varies
        // per HashSet instance, so same-seed runs could disagree.
        let g1 = barabasi_albert(150, 3, &mut SmallRng::seed_from_u64(77));
        let g2 = barabasi_albert(150, 3, &mut SmallRng::seed_from_u64(77));
        assert_eq!(g1, g2);
    }

    #[test]
    fn barabasi_albert_edges_matches_in_ram_construction() {
        let g = barabasi_albert(120, 2, &mut SmallRng::seed_from_u64(9));
        let mut rng = SmallRng::seed_from_u64(9);
        let mut b = crate::GraphBuilder::new(120);
        barabasi_albert_edges(120, 2, &mut rng, |u, v| {
            assert!(u < v);
            b.add_canonical_edge_unchecked(u, v);
        });
        assert_eq!(b.build(), g);
    }

    #[test]
    #[should_panic(expected = "m + 1")]
    fn barabasi_albert_too_small_panics() {
        let mut rng = SmallRng::seed_from_u64(7);
        let _ = barabasi_albert(3, 3, &mut rng);
    }

    #[test]
    fn planted_partition_density_contrast() {
        let mut rng = SmallRng::seed_from_u64(8);
        let n = 60;
        let g = planted_partition(n, 3, 0.8, 0.02, &mut rng);
        let group = |v: u32| (v as usize) * 3 / n;
        let (mut inside, mut across) = (0usize, 0usize);
        for (u, v) in g.edges() {
            if group(u) == group(v) {
                inside += 1;
            } else {
                across += 1;
            }
        }
        assert!(inside > 5 * across, "inside {inside}, across {across}");
    }

    #[test]
    fn planted_partition_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        let g = planted_partition(30, 3, 1.0, 0.0, &mut rng);
        // Three disjoint K₁₀s.
        assert_eq!(g.edge_count(), 3 * 45);
        assert_eq!(ops::connected_components(&g).len(), 3);
    }

    #[test]
    fn caveman_structure() {
        let g = connected_caveman(4, 5);
        assert_eq!(g.node_count(), 20);
        // 4 cliques × 10 edges + 4 bridges.
        assert_eq!(g.edge_count(), 44);
        assert!(ops::is_connected(&g));
        let single = connected_caveman(1, 4);
        assert_eq!(single.edge_count(), 6);
    }
}
