//! Deterministic classic topologies.

use crate::{Graph, GraphBuilder, NodeId};

/// The complete graph `K_n`.
///
/// On `K_n` the feedback algorithm shows its non-Luby behaviour: only one
/// node can win a round, so progress per round is tiny at first and the
/// adaptive probabilities matter (see the discussion before Theorem 2).
///
/// # Panics
///
/// Panics if `n` exceeds the `u32` index space.
///
/// # Examples
///
/// ```
/// let g = mis_graph::generators::complete(5);
/// assert_eq!(g.edge_count(), 10);
/// assert_eq!(g.max_degree(), 4);
/// ```
#[must_use]
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    b.reserve(n * n.saturating_sub(1) / 2);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            b.add_canonical_edge_unchecked(u, v);
        }
    }
    b.build()
}

/// The path `P_n` on `n` nodes (`n - 1` edges).
///
/// # Panics
///
/// Panics if `n` exceeds the `u32` index space.
#[must_use]
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n as NodeId {
        b.add_canonical_edge_unchecked(v - 1, v);
    }
    b.build()
}

/// The cycle `C_n` on `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3` or `n` exceeds the `u32` index space.
#[must_use]
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut b = GraphBuilder::new(n);
    for v in 1..n as NodeId {
        b.add_canonical_edge_unchecked(v - 1, v);
    }
    b.add_canonical_edge_unchecked(0, (n - 1) as NodeId);
    b.build()
}

/// The star `K_{1,n-1}`: node 0 is the centre.
///
/// The unique MIS containing the centre is `{0}`; the unique MIS avoiding it
/// is all the leaves — a useful asymmetric test case.
///
/// # Panics
///
/// Panics if `n == 0` or `n` exceeds the `u32` index space.
#[must_use]
pub fn star(n: usize) -> Graph {
    assert!(n >= 1, "a star needs at least its centre");
    let mut b = GraphBuilder::new(n);
    for v in 1..n as NodeId {
        b.add_canonical_edge_unchecked(0, v);
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}`: nodes `0..a` on one side,
/// `a..a+b` on the other.
///
/// # Panics
///
/// Panics if `a + b` exceeds the `u32` index space.
#[must_use]
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let n = a + b;
    let mut builder = GraphBuilder::new(n);
    builder.reserve(a * b);
    for u in 0..a as NodeId {
        for v in a as NodeId..n as NodeId {
            builder.add_canonical_edge_unchecked(u, v);
        }
    }
    builder.build()
}

/// The wheel `W_n`: a cycle on nodes `1..n` plus hub node 0 adjacent to all.
///
/// # Panics
///
/// Panics if `n < 4` (the smallest wheel) or `n` exceeds the `u32` index
/// space.
#[must_use]
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "a wheel needs at least 4 nodes");
    let mut b = GraphBuilder::new(n);
    for v in 1..n as NodeId {
        b.add_canonical_edge_unchecked(0, v);
    }
    for v in 2..n as NodeId {
        b.add_canonical_edge_unchecked(v - 1, v);
    }
    b.add_canonical_edge_unchecked(1, (n - 1) as NodeId);
    b.build()
}

/// The `dim`-dimensional hypercube `Q_dim` on `2^dim` nodes; nodes are
/// adjacent iff their indices differ in exactly one bit.
///
/// # Panics
///
/// Panics if `dim ≥ 32`.
#[must_use]
pub fn hypercube(dim: u32) -> Graph {
    assert!(dim < 32, "hypercube dimension must be below 32");
    let n = 1usize << dim;
    let mut b = GraphBuilder::new(n);
    b.reserve(n * dim as usize / 2);
    for v in 0..n as NodeId {
        for bit in 0..dim {
            let u = v ^ (1 << bit);
            if v < u {
                b.add_canonical_edge_unchecked(v, u);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_counts() {
        for n in 0..8 {
            let g = complete(n);
            assert_eq!(g.edge_count(), n * n.saturating_sub(1) / 2);
            if n > 1 {
                assert_eq!(g.min_degree(), n - 1);
            }
        }
    }

    #[test]
    fn path_structure() {
        let g = path(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(path(1).edge_count(), 0);
        assert_eq!(path(0).node_count(), 0);
    }

    #[test]
    fn cycle_structure() {
        let g = cycle(6);
        assert_eq!(g.edge_count(), 6);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(0, 5));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_panics() {
        let _ = cycle(2);
    }

    #[test]
    fn star_structure() {
        let g = star(7);
        assert_eq!(g.degree(0), 6);
        for v in 1..7 {
            assert_eq!(g.degree(v), 1);
        }
        assert_eq!(star(1).edge_count(), 0);
    }

    #[test]
    fn bipartite_structure() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 12);
        assert!(!g.has_edge(0, 1)); // same side
        assert!(g.has_edge(0, 3));
        assert_eq!(complete_bipartite(0, 5).edge_count(), 0);
    }

    #[test]
    fn wheel_structure() {
        let g = wheel(6);
        assert_eq!(g.degree(0), 5);
        for v in 1..6 {
            assert_eq!(g.degree(v), 3);
        }
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 32);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        assert!(g.has_edge(0b0000, 0b1000));
        assert!(!g.has_edge(0b0000, 0b1100));
        assert_eq!(hypercube(0).node_count(), 1);
    }
}
