//! Erdős–Rényi random graphs.

use rand::Rng;
use std::collections::HashSet;

use crate::{Graph, GraphBuilder, NodeId};

/// Samples an Erdős–Rényi graph `G(n, p)`: each of the `n(n-1)/2` possible
/// edges is present independently with probability `p`.
///
/// Uses the Batagelj–Brandes geometric-skip method, running in
/// `O(n + m)` expected time rather than `O(n²)`, so the `n = 1000`,
/// `p = ½` workloads of Figure 3 and sparse graphs alike are cheap.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]` or `n` exceeds the `u32` index space.
///
/// # Examples
///
/// ```
/// use mis_graph::generators::gnp;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let g = gnp(100, 0.5, &mut rng);
/// assert_eq!(g.node_count(), 100);
/// // ~2475 edges expected; the bound below fails with negligible probability.
/// assert!(g.edge_count() > 2000 && g.edge_count() < 3000);
/// ```
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability must be in [0, 1]"
    );
    if n == 0 || p == 0.0 {
        return Graph::empty(n);
    }
    if p == 1.0 {
        return super::complete(n);
    }
    let mut builder = GraphBuilder::new(n);
    let expected = (0.5 * p * n as f64 * (n as f64 - 1.0)) as usize;
    builder.reserve(expected + 16);
    gnp_edges(n, p, rng, |u, v| {
        builder.add_canonical_edge_unchecked(u, v);
    });
    builder.build()
}

/// Streaming form of [`gnp`]: emits each sampled edge `(u, v)` with
/// `u < v` through `emit` instead of materialising a [`Graph`], in O(1)
/// memory — the scale tier feeds this straight into a
/// [`ShardWriter`](crate::ShardWriter).
///
/// Consumes the RNG identically to [`gnp`], so streaming and in-RAM
/// construction from the same seeded RNG produce the same edge set.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn gnp_edges<R, F>(n: usize, p: f64, rng: &mut R, mut emit: F)
where
    R: Rng + ?Sized,
    F: FnMut(NodeId, NodeId),
{
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability must be in [0, 1]"
    );
    if n == 0 || p == 0.0 {
        return;
    }
    if p == 1.0 {
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                emit(u, v);
            }
        }
        return;
    }
    let log_q = (1.0 - p).ln();
    // Iterate over canonical pairs (v, w) with w < v, skipping geometrically.
    let mut v: usize = 1;
    let mut w: i64 = -1;
    while v < n {
        let r: f64 = rng.random::<f64>();
        // log(1-r) is safe: r < 1 with probability 1; clamp defensively.
        let skip = ((1.0 - r).max(f64::MIN_POSITIVE).ln() / log_q).floor() as i64;
        w += 1 + skip;
        while w >= v as i64 && v < n {
            w -= v as i64;
            v += 1;
        }
        if v < n {
            emit(w as NodeId, v as NodeId);
        }
    }
}

/// Samples a uniform random graph `G(n, m)` with exactly `m` distinct edges.
///
/// # Panics
///
/// Panics if `m` exceeds `n(n-1)/2` or `n` exceeds the `u32` index space.
///
/// # Examples
///
/// ```
/// use mis_graph::generators::gnm;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(2);
/// let g = gnm(10, 15, &mut rng);
/// assert_eq!(g.edge_count(), 15);
/// ```
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_edges,
        "requested {m} edges but K_{n} has only {max_edges}"
    );
    if n == 0 {
        return Graph::empty(0);
    }
    // Dense request: sample the complement instead to keep rejection cheap.
    if m > max_edges / 2 {
        let complement = gnm(n, max_edges - m, rng);
        let mut builder = GraphBuilder::new(n);
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                if !complement.has_edge(u, v) {
                    builder.add_canonical_edge_unchecked(u, v);
                }
            }
        }
        return builder.build();
    }
    // detlint: allow(D01) -- membership-only rejection set; edges are emitted via the builder
    let mut chosen: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(m);
    let mut builder = GraphBuilder::new(n);
    builder.reserve(m);
    while chosen.len() < m {
        let u = rng.random_range(0..n as NodeId);
        let v = rng.random_range(0..n as NodeId);
        if u == v {
            continue;
        }
        let e = (u.min(v), u.max(v));
        if chosen.insert(e) {
            builder.add_canonical_edge_unchecked(e.0, e.1);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn gnp_zero_probability_is_empty() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = gnp(50, 0.0, &mut rng);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn gnp_one_probability_is_complete() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = gnp(20, 1.0, &mut rng);
        assert_eq!(g.edge_count(), 190);
    }

    #[test]
    fn gnp_zero_nodes() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = gnp(0, 0.5, &mut rng);
        assert!(g.is_empty());
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let mut rng = SmallRng::seed_from_u64(6);
        let n = 200;
        let p = 0.3;
        let g = gnp(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.edge_count() as f64;
        // 6 sigma of Binomial(19900, 0.3): sigma ≈ 64.6
        assert!(
            (got - expected).abs() < 400.0,
            "edge count {got} far from {expected}"
        );
    }

    #[test]
    fn gnp_sparse_regime() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = gnp(10_000, 0.0005, &mut rng);
        let expected = 0.0005 * (10_000.0 * 9_999.0) / 2.0; // ≈ 25000
        assert!((g.edge_count() as f64 - expected).abs() < 2_000.0);
    }

    #[test]
    fn gnp_is_simple_graph() {
        let mut rng = SmallRng::seed_from_u64(8);
        let g = gnp(100, 0.5, &mut rng);
        for v in g.nodes() {
            let nbrs = g.neighbors(v);
            assert!(!nbrs.contains(&v), "self loop at {v}");
            for w in nbrs.windows(2) {
                assert!(w[0] < w[1], "unsorted or duplicate neighbour");
            }
        }
    }

    #[test]
    fn gnp_different_seeds_differ() {
        let g1 = gnp(60, 0.5, &mut SmallRng::seed_from_u64(1));
        let g2 = gnp(60, 0.5, &mut SmallRng::seed_from_u64(2));
        assert_ne!(g1, g2);
    }

    #[test]
    fn gnp_same_seed_is_deterministic() {
        let g1 = gnp(60, 0.5, &mut SmallRng::seed_from_u64(9));
        let g2 = gnp(60, 0.5, &mut SmallRng::seed_from_u64(9));
        assert_eq!(g1, g2);
    }

    #[test]
    fn gnp_edges_matches_in_ram_construction() {
        for (n, p) in [(0, 0.5), (80, 0.0), (80, 0.15), (12, 1.0), (200, 0.6)] {
            let g = gnp(n, p, &mut SmallRng::seed_from_u64(21));
            let mut rng = SmallRng::seed_from_u64(21);
            let mut b = crate::GraphBuilder::new(n);
            gnp_edges(n, p, &mut rng, |u, v| {
                assert!(u < v, "emission must be canonical");
                b.add_canonical_edge_unchecked(u, v);
            });
            assert_eq!(b.build(), g, "n={n} p={p}");
        }
    }

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = SmallRng::seed_from_u64(10);
        for m in [0, 1, 10, 44, 45] {
            let g = gnm(10, m, &mut rng);
            assert_eq!(g.edge_count(), m);
        }
    }

    #[test]
    fn gnm_dense_path_via_complement() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = gnm(12, 60, &mut rng); // max is 66, so complement path triggers
        assert_eq!(g.edge_count(), 60);
    }

    #[test]
    #[should_panic(expected = "edges")]
    fn gnm_too_many_edges_panics() {
        let mut rng = SmallRng::seed_from_u64(12);
        let _ = gnm(4, 7, &mut rng);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gnp_bad_probability_panics() {
        let mut rng = SmallRng::seed_from_u64(13);
        let _ = gnp(4, 1.5, &mut rng);
    }
}
