//! Out-of-core graph streaming: the binary shard format, the bounded-memory
//! [`ShardWriter`], and the paged [`DiskGraph`] reader.
//!
//! The scale tier decouples graph **generation** from graph **residency**.
//! Generators emit an edge stream (see the `*_edges` variants in
//! [`generators`](crate::generators)); [`ShardWriter`] tees each edge into
//! per-shard spill files and, at [`finish`](ShardWriter::finish), converts
//! one shard at a time into the block-compressed format of
//! [`compressed`](crate::compressed) — peak memory is one shard's
//! half-edges, never the whole graph. The resulting directory can then be
//!
//! * loaded fully into RAM as a [`CompressedGraph`]
//!   ([`CompressedGraph::load_sharded`]), or
//! * served page-by-page by [`DiskGraph`], which keeps only an LRU cache of
//!   decoded blocks resident — graphs larger than RAM stream through a run.
//!
//! Everything here is `std::fs` only — no external dependencies.
//!
//! # On-disk layout
//!
//! A sharded graph is a directory:
//!
//! ```text
//! meta.bin          magic "MISGRPH1", version, node/edge counts,
//!                   max degree, nodes per shard, shard count  (u64 LE)
//! shard-00000.bin   magic "MISSHRD1", shard id, first node, node span,
//!                   block count, block offset table, sealed blocks
//! shard-00001.bin   …
//! ```
//!
//! Shard files hold word-aligned blocks in the exact byte format of
//! [`CompressedGraph`], so loading is
//! concatenation, not transcoding. `nodes_per_shard` must be a positive
//! multiple of the block size so shard boundaries coincide with block
//! boundaries.
//!
//! # Examples
//!
//! Stream a torus to shards and read it back both ways:
//!
//! ```no_run
//! use mis_graph::{generators, CompressedGraph, DiskGraph, GraphView, ShardWriter};
//!
//! let dir = std::env::temp_dir().join("torus-shards");
//! let mut w = ShardWriter::create(&dir, 30 * 30, 256)?;
//! generators::torus2d_edges(30, 30, |u, v| w.add_edge(u, v));
//! let summary = w.finish()?;
//! assert_eq!(summary.edge_count, 2 * 900);
//!
//! let in_ram = CompressedGraph::load_sharded(&dir)?;
//! let paged = DiskGraph::open(&dir)?;
//! assert_eq!(in_ram.edge_count(), paged.edge_count());
//! # Ok::<(), mis_graph::StreamError>(())
//! ```

use core::fmt;
use core::ops::ControlFlow;
use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::compressed::{decode_block, BlockWriter, DecodedBlock, BLOCK_NODES};
use crate::{CompressedGraph, GraphError, GraphView, NodeId};

const META_MAGIC: &[u8; 8] = b"MISGRPH1";
const SHARD_MAGIC: &[u8; 8] = b"MISSHRD1";
const META_VERSION: u64 = 1;

/// Default shard granularity: 2²⁰ nodes (a multiple of the block size).
pub const DEFAULT_NODES_PER_SHARD: usize = 1 << 20;

/// Default number of decoded blocks a [`DiskGraph`] keeps resident.
pub const DEFAULT_CACHE_BLOCKS: usize = 1024;

/// Errors from the streaming layer: invalid graph input, I/O failures, or
/// a malformed/corrupt shard directory.
#[derive(Debug)]
#[non_exhaustive]
pub enum StreamError {
    /// The edge stream violated the simple-graph contract (self-loop,
    /// out-of-range endpoint) or a parser rejected its input.
    Graph(GraphError),
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A shard directory is malformed or internally inconsistent.
    Format {
        /// The offending file.
        path: PathBuf,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Graph(e) => write!(f, "invalid graph stream: {e}"),
            StreamError::Io(e) => write!(f, "I/O error: {e}"),
            StreamError::Format { path, reason } => {
                write!(f, "malformed shard file {}: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Graph(e) => Some(e),
            StreamError::Io(e) => Some(e),
            StreamError::Format { .. } => None,
        }
    }
}

impl From<GraphError> for StreamError {
    fn from(e: GraphError) -> Self {
        StreamError::Graph(e)
    }
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

/// What a [`ShardWriter`] produced: the header facts of `meta.bin` plus
/// the total on-disk adjacency footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedGraphSummary {
    /// Number of nodes.
    pub node_count: usize,
    /// Number of distinct undirected edges (after deduplication).
    pub edge_count: usize,
    /// Maximum degree Δ.
    pub max_degree: usize,
    /// Shard granularity the directory was written with.
    pub nodes_per_shard: usize,
    /// Number of shard files.
    pub shard_count: usize,
    /// On-disk adjacency bytes (sealed blocks plus block offset tables).
    pub adjacency_bytes: u64,
}

fn shard_path(dir: &Path, s: usize) -> PathBuf {
    dir.join(format!("shard-{s:05}.bin"))
}

fn spill_path(dir: &Path, s: usize) -> PathBuf {
    dir.join(format!("spill-{s:05}.tmp"))
}

fn meta_path(dir: &Path) -> PathBuf {
    dir.join("meta.bin")
}

fn write_u64<W: Write>(w: &mut W, x: u64) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn format_err(path: &Path, reason: impl Into<String>) -> StreamError {
    StreamError::Format {
        path: path.to_path_buf(),
        reason: reason.into(),
    }
}

/// Encodes one shard's nodes into sealed blocks plus a relative block
/// offset table.
struct ShardEncoder {
    data: Vec<u8>,
    block_starts: Vec<u64>,
    block: BlockWriter,
}

impl ShardEncoder {
    fn new() -> Self {
        Self {
            data: Vec::new(),
            block_starts: vec![0],
            block: BlockWriter::default(),
        }
    }

    fn push(&mut self, v: NodeId, neighbors: &[NodeId]) {
        self.block.push(v, neighbors);
        if self.block.len() == BLOCK_NODES {
            self.block.seal_into(&mut self.data);
            self.block_starts.push(self.data.len() as u64);
        }
    }

    fn finish(mut self) -> (Vec<u8>, Vec<u64>) {
        if !self.block.is_empty() {
            self.block.seal_into(&mut self.data);
            self.block_starts.push(self.data.len() as u64);
        }
        (self.data, self.block_starts)
    }
}

/// Writes one shard file and returns its on-disk adjacency bytes (data
/// plus offset table).
fn write_shard_file(
    path: &Path,
    shard_id: usize,
    first_node: usize,
    node_span: usize,
    block_starts: &[u64],
    data: &[u8],
) -> io::Result<u64> {
    let mut f = BufWriter::new(File::create(path)?);
    f.write_all(SHARD_MAGIC)?;
    write_u64(&mut f, shard_id as u64)?;
    write_u64(&mut f, first_node as u64)?;
    write_u64(&mut f, node_span as u64)?;
    write_u64(&mut f, (block_starts.len() - 1) as u64)?;
    for &off in block_starts {
        write_u64(&mut f, off)?;
    }
    f.write_all(data)?;
    f.flush()?;
    Ok(data.len() as u64 + block_starts.len() as u64 * 8)
}

fn write_meta_file(dir: &Path, summary: &ShardedGraphSummary) -> io::Result<()> {
    let mut f = BufWriter::new(File::create(meta_path(dir))?);
    f.write_all(META_MAGIC)?;
    write_u64(&mut f, META_VERSION)?;
    write_u64(&mut f, summary.node_count as u64)?;
    write_u64(&mut f, summary.edge_count as u64)?;
    write_u64(&mut f, summary.max_degree as u64)?;
    write_u64(&mut f, summary.nodes_per_shard as u64)?;
    write_u64(&mut f, summary.shard_count as u64)?;
    f.flush()
}

/// Bounded-memory writer for the sharded on-disk format.
///
/// Feed it an edge stream in any order via [`add_edge`](Self::add_edge);
/// each edge is teed to the spill files of both endpoint shards, so peak
/// memory during streaming is a handful of write buffers. At
/// [`finish`](Self::finish) each shard is sorted, deduplicated and sealed
/// into blocks independently — peak memory is one shard's half-edges, not
/// the graph's.
///
/// Errors discovered mid-stream (self-loops, out-of-range endpoints, I/O
/// failures) are latched and reported by `finish`, so edge-emitting
/// closures stay infallible. Spill files are removed on `finish` and on
/// drop.
pub struct ShardWriter {
    dir: PathBuf,
    node_count: usize,
    nodes_per_shard: usize,
    spills: Vec<BufWriter<File>>,
    error: Option<StreamError>,
    finished: bool,
}

impl ShardWriter {
    /// Creates a shard directory (and any missing parents) for a graph
    /// with `node_count` nodes at `nodes_per_shard` granularity.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Graph`] if `node_count` exceeds the `u32`
    /// index space and [`StreamError::Io`] for filesystem failures.
    ///
    /// # Panics
    ///
    /// Panics if `nodes_per_shard` is zero or not a multiple of the block
    /// size ([`BLOCK_NODES`]).
    pub fn create(
        dir: impl AsRef<Path>,
        node_count: usize,
        nodes_per_shard: usize,
    ) -> Result<Self, StreamError> {
        assert!(
            nodes_per_shard > 0 && nodes_per_shard.is_multiple_of(BLOCK_NODES),
            "nodes_per_shard must be a positive multiple of {BLOCK_NODES}"
        );
        if node_count > u32::MAX as usize {
            return Err(GraphError::TooManyNodes {
                requested: node_count,
            }
            .into());
        }
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let shard_count = node_count.div_ceil(nodes_per_shard);
        let mut spills = Vec::with_capacity(shard_count);
        for s in 0..shard_count {
            spills.push(BufWriter::new(File::create(spill_path(&dir, s))?));
        }
        Ok(Self {
            dir,
            node_count,
            nodes_per_shard,
            spills,
            error: None,
            finished: false,
        })
    }

    /// Number of shard files the directory will contain.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.spills.len()
    }

    /// Streams one undirected edge, in any orientation; duplicates are
    /// merged at [`finish`](Self::finish). Invalid edges and I/O failures
    /// latch the first error for `finish` to report, so this never fails
    /// mid-stream.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        if self.error.is_some() {
            return;
        }
        if u == v {
            self.error = Some(GraphError::SelfLoop { node: u }.into());
            return;
        }
        for w in [u, v] {
            if w as usize >= self.node_count {
                self.error = Some(
                    GraphError::NodeOutOfRange {
                        node: w,
                        node_count: self.node_count,
                    }
                    .into(),
                );
                return;
            }
        }
        let mut rec = [0u8; 8];
        for (node, nbr) in [(u, v), (v, u)] {
            rec[..4].copy_from_slice(&node.to_le_bytes());
            rec[4..].copy_from_slice(&nbr.to_le_bytes());
            let shard = node as usize / self.nodes_per_shard;
            if let Err(e) = self.spills[shard].write_all(&rec) {
                self.error = Some(e.into());
                return;
            }
        }
    }

    /// The first error latched by [`add_edge`](Self::add_edge), if any.
    #[must_use]
    pub fn error(&self) -> Option<&StreamError> {
        self.error.as_ref()
    }

    /// Sorts, deduplicates and seals every shard, writes `meta.bin`, and
    /// removes the spill files.
    ///
    /// # Errors
    ///
    /// Returns the first latched [`add_edge`](Self::add_edge) error, or
    /// any I/O error from sealing the shards.
    pub fn finish(mut self) -> Result<ShardedGraphSummary, StreamError> {
        self.finished = true;
        let result = self.finish_inner();
        self.cleanup_spills();
        result
    }

    fn finish_inner(&mut self) -> Result<ShardedGraphSummary, StreamError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let shard_count = self.spills.len();
        for spill in &mut self.spills {
            spill.flush()?;
        }
        self.spills.clear(); // close the spill handles
        let mut degree_sum = 0u64;
        let mut max_degree = 0usize;
        let mut adjacency_bytes = 0u64;
        for s in 0..shard_count {
            let first = s * self.nodes_per_shard;
            let span = self.nodes_per_shard.min(self.node_count - first);
            let spill = spill_path(&self.dir, s);
            let bytes = fs::read(&spill)?;
            if !bytes.len().is_multiple_of(8) {
                return Err(format_err(&spill, "truncated spill record"));
            }
            let mut recs: Vec<(NodeId, NodeId)> = bytes
                .chunks_exact(8)
                .map(|c| {
                    (
                        u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                        u32::from_le_bytes([c[4], c[5], c[6], c[7]]),
                    )
                })
                .collect();
            drop(bytes);
            recs.sort_unstable();
            recs.dedup();
            let mut encoder = ShardEncoder::new();
            let mut neighbors: Vec<NodeId> = Vec::new();
            let mut i = 0usize;
            for local in 0..span {
                let v = (first + local) as NodeId;
                neighbors.clear();
                while i < recs.len() && recs[i].0 == v {
                    neighbors.push(recs[i].1);
                    i += 1;
                }
                degree_sum += neighbors.len() as u64;
                max_degree = max_degree.max(neighbors.len());
                encoder.push(v, &neighbors);
            }
            let (data, block_starts) = encoder.finish();
            adjacency_bytes += write_shard_file(
                &shard_path(&self.dir, s),
                s,
                first,
                span,
                &block_starts,
                &data,
            )?;
            let _ = fs::remove_file(&spill);
        }
        debug_assert!(degree_sum.is_multiple_of(2), "teed half-edges must pair up");
        let summary = ShardedGraphSummary {
            node_count: self.node_count,
            edge_count: (degree_sum / 2) as usize,
            max_degree,
            nodes_per_shard: self.nodes_per_shard,
            shard_count,
            adjacency_bytes,
        };
        write_meta_file(&self.dir, &summary)?;
        Ok(summary)
    }

    fn cleanup_spills(&mut self) {
        self.spills.clear();
        let shard_count = self.node_count.div_ceil(self.nodes_per_shard);
        for s in 0..shard_count {
            let _ = fs::remove_file(spill_path(&self.dir, s));
        }
    }
}

impl Drop for ShardWriter {
    fn drop(&mut self) {
        if !self.finished {
            self.cleanup_spills();
        }
    }
}

impl fmt::Debug for ShardWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardWriter")
            .field("dir", &self.dir)
            .field("nodes", &self.node_count)
            .field("nodes_per_shard", &self.nodes_per_shard)
            .field("shards", &self.shard_count())
            .finish()
    }
}

/// Writes an already-resident [`GraphView`] to the sharded format without
/// spill files (adjacency is encoded shard by shard straight from the
/// view). Produces byte-identical files to streaming the same graph's
/// edges through a [`ShardWriter`].
///
/// # Errors
///
/// Returns [`StreamError::Io`] for filesystem failures.
///
/// # Panics
///
/// Panics if `nodes_per_shard` is zero or not a multiple of the block
/// size.
pub fn write_sharded_from_view<G: GraphView + ?Sized>(
    dir: impl AsRef<Path>,
    g: &G,
    nodes_per_shard: usize,
) -> Result<ShardedGraphSummary, StreamError> {
    assert!(
        nodes_per_shard > 0 && nodes_per_shard.is_multiple_of(BLOCK_NODES),
        "nodes_per_shard must be a positive multiple of {BLOCK_NODES}"
    );
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let node_count = g.node_count();
    let shard_count = node_count.div_ceil(nodes_per_shard);
    let mut degree_sum = 0u64;
    let mut max_degree = 0usize;
    let mut adjacency_bytes = 0u64;
    let mut neighbors: Vec<NodeId> = Vec::new();
    for s in 0..shard_count {
        let first = s * nodes_per_shard;
        let span = nodes_per_shard.min(node_count - first);
        let mut encoder = ShardEncoder::new();
        for local in 0..span {
            let v = (first + local) as NodeId;
            neighbors.clear();
            g.for_each_neighbor(v, |u| neighbors.push(u));
            degree_sum += neighbors.len() as u64;
            max_degree = max_degree.max(neighbors.len());
            encoder.push(v, &neighbors);
        }
        let (data, block_starts) = encoder.finish();
        adjacency_bytes +=
            write_shard_file(&shard_path(dir, s), s, first, span, &block_starts, &data)?;
    }
    let summary = ShardedGraphSummary {
        node_count,
        edge_count: (degree_sum / 2) as usize,
        max_degree,
        nodes_per_shard,
        shard_count,
        adjacency_bytes,
    };
    write_meta_file(dir, &summary)?;
    Ok(summary)
}

/// Parsed `meta.bin` plus derived shard geometry.
struct MetaFile {
    node_count: usize,
    edge_count: usize,
    max_degree: usize,
    nodes_per_shard: usize,
    shard_count: usize,
}

fn read_meta(dir: &Path) -> Result<MetaFile, StreamError> {
    let path = meta_path(dir);
    let mut f = File::open(&path)?;
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic)?;
    if &magic != META_MAGIC {
        return Err(format_err(&path, "bad magic (not a sharded graph)"));
    }
    let version = read_u64(&mut f)?;
    if version != META_VERSION {
        return Err(format_err(&path, format!("unsupported version {version}")));
    }
    let node_count = read_u64(&mut f)? as usize;
    let edge_count = read_u64(&mut f)? as usize;
    let max_degree = read_u64(&mut f)? as usize;
    let nodes_per_shard = read_u64(&mut f)? as usize;
    let shard_count = read_u64(&mut f)? as usize;
    if node_count > u32::MAX as usize {
        return Err(format_err(&path, "node count exceeds u32 index space"));
    }
    if nodes_per_shard == 0 || !nodes_per_shard.is_multiple_of(BLOCK_NODES) {
        return Err(format_err(&path, "invalid nodes_per_shard"));
    }
    if shard_count != node_count.div_ceil(nodes_per_shard) {
        return Err(format_err(&path, "shard count disagrees with node count"));
    }
    Ok(MetaFile {
        node_count,
        edge_count,
        max_degree,
        nodes_per_shard,
        shard_count,
    })
}

/// Reads one shard header (magic through the offset table), leaving the
/// file positioned at the start of the block data. Returns the offsets.
fn read_shard_header(
    f: &mut File,
    path: &Path,
    shard_id: usize,
    expect_first: usize,
    expect_span: usize,
) -> Result<Vec<u64>, StreamError> {
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic)?;
    if &magic != SHARD_MAGIC {
        return Err(format_err(path, "bad shard magic"));
    }
    if read_u64(f)? as usize != shard_id {
        return Err(format_err(path, "shard id mismatch"));
    }
    if read_u64(f)? as usize != expect_first {
        return Err(format_err(path, "first-node mismatch"));
    }
    if read_u64(f)? as usize != expect_span {
        return Err(format_err(path, "node-span mismatch"));
    }
    let block_count = read_u64(f)? as usize;
    if block_count != expect_span.div_ceil(BLOCK_NODES) {
        return Err(format_err(path, "block count disagrees with node span"));
    }
    let mut offsets = Vec::with_capacity(block_count + 1);
    for _ in 0..=block_count {
        offsets.push(read_u64(f)?);
    }
    for pair in offsets.windows(2) {
        if pair[0] > pair[1] {
            return Err(format_err(path, "block offsets not ascending"));
        }
    }
    Ok(offsets)
}

impl CompressedGraph {
    /// Loads a shard directory fully into RAM, validating every block
    /// against the adjacency contract and the `meta.bin` header facts.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Io`] for filesystem failures and
    /// [`StreamError::Format`] for malformed or corrupt directories.
    pub fn load_sharded(dir: impl AsRef<Path>) -> Result<Self, StreamError> {
        let dir = dir.as_ref();
        let meta = read_meta(dir)?;
        let mut data: Vec<u8> = Vec::new();
        let mut block_starts: Vec<u64> = vec![0];
        let mut degree_sum = 0u64;
        let mut max_degree = 0usize;
        for s in 0..meta.shard_count {
            let path = shard_path(dir, s);
            let first = s * meta.nodes_per_shard;
            let span = meta.nodes_per_shard.min(meta.node_count - first);
            let mut f = File::open(&path)?;
            let offsets = read_shard_header(&mut f, &path, s, first, span)?;
            let base_len = data.len() as u64;
            let shard_bytes = *offsets.last().expect("offsets never empty");
            data.resize((base_len + shard_bytes) as usize, 0);
            f.read_exact(&mut data[base_len as usize..])?;
            for (b, pair) in offsets.windows(2).enumerate() {
                let block_base = (first + b * BLOCK_NODES) as NodeId;
                let block_span = (span - b * BLOCK_NODES).min(BLOCK_NODES);
                let bytes = &data[(base_len + pair[0]) as usize..(base_len + pair[1]) as usize];
                let decoded = decode_block(bytes, block_base, block_span, meta.node_count)
                    .map_err(|reason| format_err(&path, format!("block {b}: {reason}")))?;
                degree_sum += decoded.neighbors.len() as u64;
                max_degree = max_degree.max(
                    decoded
                        .starts
                        .windows(2)
                        .map(|p| (p[1] - p[0]) as usize)
                        .max()
                        .unwrap_or(0),
                );
                block_starts.push(base_len + pair[1]);
            }
        }
        if degree_sum != 2 * meta.edge_count as u64 || max_degree != meta.max_degree {
            return Err(format_err(
                &meta_path(dir),
                "header stats disagree with block contents",
            ));
        }
        Ok(CompressedGraph::from_parts(
            meta.node_count,
            meta.edge_count,
            meta.max_degree,
            block_starts,
            data,
        ))
    }
}

struct DiskShard {
    first_block: usize,
    data_start: u64,
    block_starts: Vec<u64>,
}

struct CacheEntry {
    block: Arc<DecodedBlock>,
    last_used: u64,
}

struct DiskState {
    files: Vec<File>,
    // BTreeMap, not HashMap: both LRU evictions below iterate the cache to
    // find the min-tick victim, and `last_used` ties (pre-warm, equal-tick
    // paths) must break toward the same block in every process — hash-order
    // iteration made eviction, and with it DiskCacheStats, run-dependent.
    cache: BTreeMap<usize, CacheEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// Hit/miss counters of a [`DiskGraph`]'s block cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskCacheStats {
    /// Block requests served from the resident cache.
    pub hits: u64,
    /// Block requests that read and decoded from disk.
    pub misses: u64,
}

/// A paged, read-only graph served from a shard directory: adjacency
/// stays on disk and only an LRU cache of decoded blocks (64 nodes each)
/// is resident, so graphs larger than RAM stream through a simulation.
///
/// Implements [`GraphView`], so kernels, engines, views and the sharded
/// batch machinery run on it unchanged. `edge_count`/`max_degree` come
/// from the `meta.bin` header in O(1) rather than the trait's degree-scan
/// defaults.
///
/// Shard files are validated at [`open`](Self::open); an I/O failure or
/// corrupt block encountered **mid-run** panics, since [`GraphView`]
/// accessors cannot report errors.
pub struct DiskGraph {
    node_count: usize,
    edge_count: usize,
    max_degree: usize,
    nodes_per_shard: usize,
    adjacency_bytes: u64,
    shards: Vec<DiskShard>,
    cache_blocks: usize,
    state: Mutex<DiskState>,
}

impl DiskGraph {
    /// Opens a shard directory, validating `meta.bin` and every shard
    /// header (block payloads are validated lazily as they are decoded).
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Io`] for filesystem failures and
    /// [`StreamError::Format`] for malformed directories.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StreamError> {
        let dir = dir.as_ref();
        let meta = read_meta(dir)?;
        let mut shards = Vec::with_capacity(meta.shard_count);
        let mut files = Vec::with_capacity(meta.shard_count);
        let mut adjacency_bytes = 0u64;
        for s in 0..meta.shard_count {
            let path = shard_path(dir, s);
            let first = s * meta.nodes_per_shard;
            let span = meta.nodes_per_shard.min(meta.node_count - first);
            let mut f = File::open(&path)?;
            let block_starts = read_shard_header(&mut f, &path, s, first, span)?;
            let data_start = f.stream_position()?;
            adjacency_bytes +=
                block_starts.last().expect("offsets never empty") + block_starts.len() as u64 * 8;
            shards.push(DiskShard {
                first_block: first / BLOCK_NODES,
                data_start,
                block_starts,
            });
            files.push(f);
        }
        let g = Self {
            node_count: meta.node_count,
            edge_count: meta.edge_count,
            max_degree: meta.max_degree,
            nodes_per_shard: meta.nodes_per_shard,
            adjacency_bytes,
            shards,
            cache_blocks: DEFAULT_CACHE_BLOCKS,
            state: Mutex::new(DiskState {
                files,
                cache: BTreeMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
            }),
        };
        g.debug_check_overrides();
        // The debug cross-check warms the cache; start callers from a
        // clean slate so stats and residency are deterministic across
        // debug and release builds.
        {
            let mut st = g.state.lock().expect("disk graph lock");
            st.cache.clear();
            st.tick = 0;
            st.hits = 0;
            st.misses = 0;
        }
        Ok(g)
    }

    /// Sets the cache capacity in decoded blocks (≥ 1). 64 nodes per
    /// block: the default of [`DEFAULT_CACHE_BLOCKS`] keeps ~65k nodes of
    /// adjacency resident.
    /// # Panics
    ///
    /// Panics if the cache lock is poisoned.
    #[must_use]
    pub fn with_cache_blocks(mut self, blocks: usize) -> Self {
        self.cache_blocks = blocks.max(1);
        let mut st = self.state.lock().expect("disk graph lock");
        while st.cache.len() > self.cache_blocks {
            let victim = st
                .cache
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&b, _)| b);
            match victim {
                Some(b) => st.cache.remove(&b),
                None => break,
            };
        }
        drop(st);
        self
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of undirected edges (from the header, O(1)).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Maximum degree Δ (from the header, O(1)).
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// **On-disk** adjacency bytes (sealed blocks plus offset tables) —
    /// what the directory occupies, not what is resident.
    #[must_use]
    pub fn adjacency_bytes(&self) -> usize {
        self.adjacency_bytes as usize
    }

    /// Approximate resident bytes: the block offset tables plus the
    /// decoded-block cache at capacity (assuming mean-degree blocks).
    #[must_use]
    pub fn resident_bytes_estimate(&self) -> usize {
        let tables: usize = self.shards.iter().map(|s| s.block_starts.len() * 8).sum();
        let mean_degree = if self.node_count == 0 {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.node_count as f64
        };
        let per_block = BLOCK_NODES as f64 * (4.0 + mean_degree * 4.0);
        tables + (self.cache_blocks as f64 * per_block) as usize
    }

    /// Cache hit/miss counters accumulated since `open`.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock is poisoned.
    #[must_use]
    pub fn cache_stats(&self) -> DiskCacheStats {
        let st = self.state.lock().expect("disk graph lock");
        DiskCacheStats {
            hits: st.hits,
            misses: st.misses,
        }
    }

    /// Fetches (decoding and caching on miss) the block containing `v`.
    fn fetch_block(&self, b: usize) -> Arc<DecodedBlock> {
        let mut st = self.state.lock().expect("disk graph lock");
        st.tick += 1;
        let tick = st.tick;
        if let Some(entry) = st.cache.get_mut(&b) {
            entry.last_used = tick;
            let block = Arc::clone(&entry.block);
            st.hits += 1;
            return block;
        }
        st.misses += 1;
        let shard_idx = b * BLOCK_NODES / self.nodes_per_shard;
        let shard = &self.shards[shard_idx];
        let local = b - shard.first_block;
        let lo = shard.block_starts[local];
        let hi = shard.block_starts[local + 1];
        let mut buf = vec![0u8; (hi - lo) as usize];
        let file = &mut st.files[shard_idx];
        file.seek(SeekFrom::Start(shard.data_start + lo))
            .expect("seek shard block");
        file.read_exact(&mut buf).expect("read shard block");
        let base = (b * BLOCK_NODES) as NodeId;
        let span = (self.node_count - b * BLOCK_NODES).min(BLOCK_NODES);
        let block = Arc::new(
            decode_block(&buf, base, span, self.node_count)
                .unwrap_or_else(|reason| panic!("corrupt shard block {b}: {reason}")),
        );
        if st.cache.len() >= self.cache_blocks {
            if let Some((&victim, _)) = st.cache.iter().min_by_key(|(_, e)| e.last_used) {
                st.cache.remove(&victim);
            }
        }
        st.cache.insert(
            b,
            CacheEntry {
                block: Arc::clone(&block),
                last_used: tick,
            },
        );
        block
    }

    fn assert_in_range(&self, v: NodeId) {
        assert!(
            (v as usize) < self.node_count,
            "node {v} out of range for graph with {} nodes",
            self.node_count
        );
    }

    /// Asserts the stored header stats against the [`GraphView`] default
    /// degree-scan formulas on small graphs (debug builds only) — the
    /// same guard [`CompressedGraph`] applies to its O(1) overrides.
    fn debug_check_overrides(&self) {
        #[cfg(debug_assertions)]
        if self.node_count <= 4096 {
            let degrees: Vec<usize> = (0..self.node_count as NodeId)
                .map(|v| GraphView::degree(self, v))
                .collect();
            let total: usize = degrees.iter().sum();
            debug_assert_eq!(
                self.edge_count,
                total / 2,
                "header edge_count disagrees with the degree-sum default"
            );
            debug_assert_eq!(
                self.max_degree,
                degrees.iter().copied().max().unwrap_or(0),
                "header max_degree disagrees with the degree-scan default"
            );
        }
    }
}

impl GraphView for DiskGraph {
    fn node_count(&self) -> usize {
        self.node_count
    }

    fn degree(&self, v: NodeId) -> usize {
        self.assert_in_range(v);
        let block = self.fetch_block(v as usize / BLOCK_NODES);
        let slot = v as usize % BLOCK_NODES;
        block.neighbors_of(slot).len()
    }

    fn try_for_each_neighbor<F>(&self, v: NodeId, mut f: F) -> ControlFlow<()>
    where
        F: FnMut(NodeId) -> ControlFlow<()>,
    {
        self.assert_in_range(v);
        let block = self.fetch_block(v as usize / BLOCK_NODES);
        let slot = v as usize % BLOCK_NODES;
        for &u in block.neighbors_of(slot) {
            f(u)?;
        }
        ControlFlow::Continue(())
    }

    fn edge_count(&self) -> usize {
        self.edge_count
    }

    fn max_degree(&self) -> usize {
        self.max_degree
    }

    fn is_empty(&self) -> bool {
        self.node_count == 0
    }
}

impl fmt::Debug for DiskGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiskGraph")
            .field("nodes", &self.node_count)
            .field("edges", &self.edge_count)
            .field("max_degree", &self.max_degree)
            .field("shards", &self.shards.len())
            .field("cache_blocks", &self.cache_blocks)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, Graph};
    use rand::{rngs::SmallRng, SeedableRng};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique temp directory per test, removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(label: &str) -> Self {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir().join(format!(
                "mis-graph-stream-{label}-{}-{n}",
                std::process::id()
            ));
            let _ = fs::remove_dir_all(&dir);
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn stream_graph(g: &Graph, dir: &Path, nodes_per_shard: usize) -> ShardedGraphSummary {
        let mut w = ShardWriter::create(dir, g.node_count(), nodes_per_shard).unwrap();
        for (u, v) in g.edges() {
            w.add_edge(u, v);
        }
        w.finish().unwrap()
    }

    fn assert_view_matches_graph<G: GraphView + ?Sized>(view: &G, g: &Graph, label: &str) {
        assert_eq!(view.node_count(), g.node_count(), "{label}: nodes");
        assert_eq!(view.edge_count(), g.edge_count(), "{label}: edges");
        assert_eq!(view.max_degree(), Graph::max_degree(g), "{label}: Δ");
        for v in 0..g.node_count() as NodeId {
            assert_eq!(view.neighbors_vec(v), g.neighbors(v), "{label}: nbrs {v}");
        }
    }

    #[test]
    fn round_trips_through_both_readers() {
        let mut rng = SmallRng::seed_from_u64(0x5CA1E);
        let graphs = [
            ("gnp", generators::gnp(300, 0.05, &mut rng)),
            ("torus", generators::torus2d(10, 13)),
            ("star", generators::star(200)),
            ("edgeless", Graph::empty(100)),
        ];
        for (label, g) in &graphs {
            let tmp = TempDir::new(label);
            let summary = stream_graph(g, tmp.path(), 128);
            assert_eq!(summary.edge_count, g.edge_count(), "{label}");
            assert_eq!(summary.max_degree, g.max_degree(), "{label}");
            let compressed = CompressedGraph::load_sharded(tmp.path()).unwrap();
            assert_view_matches_graph(&compressed, g, label);
            let disk = DiskGraph::open(tmp.path()).unwrap().with_cache_blocks(2);
            assert_view_matches_graph(&disk, g, label);
        }
    }

    #[test]
    fn streamed_shards_match_view_written_shards() {
        let mut rng = SmallRng::seed_from_u64(42);
        let g = generators::gnp(500, 0.02, &mut rng);
        let streamed = TempDir::new("streamed");
        let from_view = TempDir::new("from-view");
        let a = stream_graph(&g, streamed.path(), 192);
        let b = write_sharded_from_view(from_view.path(), &g, 192).unwrap();
        assert_eq!(a, b);
        for s in 0..a.shard_count {
            let left = fs::read(shard_path(streamed.path(), s)).unwrap();
            let right = fs::read(shard_path(from_view.path(), s)).unwrap();
            assert_eq!(left, right, "shard {s} bytes differ");
        }
        assert_eq!(
            fs::read(meta_path(streamed.path())).unwrap(),
            fs::read(meta_path(from_view.path())).unwrap()
        );
    }

    #[test]
    fn duplicate_and_reversed_edges_merge() {
        let tmp = TempDir::new("dups");
        let mut w = ShardWriter::create(tmp.path(), 4, 64).unwrap();
        for _ in 0..3 {
            w.add_edge(0, 1);
            w.add_edge(1, 0);
        }
        w.add_edge(2, 3);
        let summary = w.finish().unwrap();
        assert_eq!(summary.edge_count, 2);
        let g = CompressedGraph::load_sharded(tmp.path()).unwrap();
        assert_eq!(g.neighbors_vec(1), vec![0]);
    }

    #[test]
    fn writer_latches_self_loop_and_range_errors() {
        let tmp = TempDir::new("selfloop");
        let mut w = ShardWriter::create(tmp.path(), 4, 64).unwrap();
        w.add_edge(1, 1);
        w.add_edge(0, 2); // ignored after the latch
        assert!(w.error().is_some());
        assert!(matches!(
            w.finish(),
            Err(StreamError::Graph(GraphError::SelfLoop { node: 1 }))
        ));

        let tmp = TempDir::new("range");
        let mut w = ShardWriter::create(tmp.path(), 4, 64).unwrap();
        w.add_edge(0, 9);
        assert!(matches!(
            w.finish(),
            Err(StreamError::Graph(GraphError::NodeOutOfRange {
                node: 9,
                ..
            }))
        ));
    }

    #[test]
    fn spills_are_removed_even_without_finish() {
        let tmp = TempDir::new("drop");
        {
            let mut w = ShardWriter::create(tmp.path(), 200, 64).unwrap();
            w.add_edge(0, 199);
        }
        let leftovers: Vec<_> = fs::read_dir(tmp.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "spill files survived drop");
    }

    #[test]
    fn open_rejects_corruption() {
        let tmp = TempDir::new("corrupt");
        let g = generators::torus2d(8, 8);
        stream_graph(&g, tmp.path(), 64);

        // Truncate the meta file.
        let meta = fs::read(meta_path(tmp.path())).unwrap();
        fs::write(meta_path(tmp.path()), &meta[..16]).unwrap();
        assert!(DiskGraph::open(tmp.path()).is_err());
        assert!(CompressedGraph::load_sharded(tmp.path()).is_err());
        fs::write(meta_path(tmp.path()), &meta).unwrap();

        // Flip the shard magic.
        let shard = shard_path(tmp.path(), 0);
        let mut bytes = fs::read(&shard).unwrap();
        bytes[0] ^= 0xff;
        fs::write(&shard, &bytes).unwrap();
        assert!(matches!(
            DiskGraph::open(tmp.path()),
            Err(StreamError::Format { .. })
        ));
        bytes[0] ^= 0xff;

        // Corrupt a block payload: load_sharded validates and rejects.
        let last = bytes.len() - 9;
        bytes[last] = 0xff;
        fs::write(&shard, &bytes).unwrap();
        assert!(CompressedGraph::load_sharded(tmp.path()).is_err());

        // Missing directory entirely.
        assert!(DiskGraph::open(tmp.path().join("nope")).is_err());
    }

    #[test]
    fn lru_cache_evicts_and_counts() {
        let tmp = TempDir::new("lru");
        let g = generators::torus2d(16, 16); // 256 nodes = 4 blocks
        stream_graph(&g, tmp.path(), 64);
        let disk = DiskGraph::open(tmp.path()).unwrap().with_cache_blocks(2);
        for v in 0..g.node_count() as NodeId {
            assert_eq!(disk.degree(v), 4);
        }
        let stats = disk.cache_stats();
        assert_eq!(stats.misses, 4, "one miss per block on a forward scan");
        assert!(stats.hits >= 250);
        // A second pass with only 2 of 4 blocks resident must re-read.
        for v in 0..g.node_count() as NodeId {
            assert_eq!(disk.degree(v), 4);
        }
        assert!(disk.cache_stats().misses > 4, "eviction forces re-reads");
    }

    #[test]
    fn empty_graph_streams() {
        let tmp = TempDir::new("empty");
        let w = ShardWriter::create(tmp.path(), 0, 64).unwrap();
        let summary = w.finish().unwrap();
        assert_eq!(summary.shard_count, 0);
        let g = CompressedGraph::load_sharded(tmp.path()).unwrap();
        assert!(g.is_empty());
        let disk = DiskGraph::open(tmp.path()).unwrap();
        assert_eq!(GraphView::edge_count(&disk), 0);
    }

    #[test]
    fn summary_reports_disk_footprint() {
        let tmp = TempDir::new("bytes");
        let g = generators::torus2d(32, 32);
        let summary = stream_graph(&g, tmp.path(), 256);
        let disk = DiskGraph::open(tmp.path()).unwrap();
        assert_eq!(disk.adjacency_bytes() as u64, summary.adjacency_bytes);
        // The whole point of the tier: well under CSR's 24 B/node here.
        assert!(summary.adjacency_bytes < g.adjacency_bytes() as u64 / 2);
        assert!(disk.resident_bytes_estimate() > 0);
    }
}
