//! Graph operations: components, subgraphs, unions, complements, statistics.

use crate::{Graph, GraphBuilder, NodeId};

/// Connected components, each a sorted list of node ids; components are
/// ordered by their smallest node.
///
/// # Examples
///
/// ```
/// use mis_graph::{ops, Graph};
///
/// let g = Graph::from_edges(5, [(0, 1), (3, 4)])?;
/// let comps = ops::connected_components(&g);
/// assert_eq!(comps, vec![vec![0, 1], vec![2], vec![3, 4]]);
/// # Ok::<(), mis_graph::GraphError>(())
/// ```
#[must_use]
pub fn connected_components(g: &Graph) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut visited = vec![false; n];
    let mut components = Vec::new();
    let mut stack = Vec::new();
    for start in 0..n as NodeId {
        if visited[start as usize] {
            continue;
        }
        let mut comp = Vec::new();
        visited[start as usize] = true;
        stack.push(start);
        while let Some(v) = stack.pop() {
            comp.push(v);
            for &u in g.neighbors(v) {
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    stack.push(u);
                }
            }
        }
        comp.sort_unstable();
        components.push(comp);
    }
    components
}

/// Whether the graph is connected (the empty graph counts as connected).
#[must_use]
pub fn is_connected(g: &Graph) -> bool {
    g.node_count() <= 1 || connected_components(g).len() == 1
}

/// The subgraph induced by `nodes`, relabelled to `0..nodes.len()` in the
/// order given.
///
/// # Panics
///
/// Panics if `nodes` contains duplicates or out-of-range ids.
#[must_use]
pub fn induced_subgraph(g: &Graph, nodes: &[NodeId]) -> Graph {
    let mut remap = vec![u32::MAX; g.node_count()];
    for (new, &old) in nodes.iter().enumerate() {
        assert!((old as usize) < g.node_count(), "node {old} out of range");
        assert!(
            remap[old as usize] == u32::MAX,
            "duplicate node {old} in selection"
        );
        remap[old as usize] = new as NodeId;
    }
    let mut b = GraphBuilder::new(nodes.len());
    for &old in nodes {
        let nu = remap[old as usize];
        for &nbr in g.neighbors(old) {
            let nv = remap[nbr as usize];
            if nv != u32::MAX && nu < nv {
                b.add_canonical_edge_unchecked(nu, nv);
            }
        }
    }
    b.build()
}

/// The disjoint union of graphs; nodes of later graphs are shifted up.
///
/// # Panics
///
/// Panics if the total node count exceeds the `u32` index space.
#[must_use]
pub fn disjoint_union(graphs: &[Graph]) -> Graph {
    let total: usize = graphs.iter().map(Graph::node_count).sum();
    let mut b = GraphBuilder::new(total);
    let mut base = 0 as NodeId;
    for g in graphs {
        for (u, v) in g.edges() {
            b.add_canonical_edge_unchecked(base + u, base + v);
        }
        base += g.node_count() as NodeId;
    }
    b.build()
}

/// The complement graph: same nodes, an edge exactly where `g` has none.
///
/// Quadratic in the node count; intended for analysis of small graphs.
///
/// # Panics
///
/// Panics if the node count exceeds the `u32` index space (inherited from
/// construction).
#[must_use]
pub fn complement(g: &Graph) -> Graph {
    let n = g.node_count();
    let mut b = GraphBuilder::new(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            if !g.has_edge(u, v) {
                b.add_canonical_edge_unchecked(u, v);
            }
        }
    }
    b.build()
}

/// Histogram of node degrees: `result[d]` is the number of nodes with
/// degree `d`; the vector has length `max_degree + 1` (empty for the empty
/// graph).
#[must_use]
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    if g.is_empty() {
        return Vec::new();
    }
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.nodes() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Breadth-first distances from `start` (`None` for unreachable nodes).
///
/// # Panics
///
/// Panics if `start` is out of range.
#[must_use]
pub fn bfs_distances(g: &Graph, start: NodeId) -> Vec<Option<u32>> {
    assert!((start as usize) < g.node_count(), "start node out of range");
    let mut dist = vec![None; g.node_count()];
    dist[start as usize] = Some(0);
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize].expect("enqueued nodes have distances");
        for &u in g.neighbors(v) {
            if dist[u as usize].is_none() {
                dist[u as usize] = Some(dv + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Number of triangles in the graph (each counted once).
///
/// Uses the standard sorted-adjacency merge over edges `(u, v)` with
/// `u < v`, counting common neighbours `w > v`; runs in
/// `O(Σ deg(u) + deg(v))` over edges.
///
/// # Examples
///
/// ```
/// use mis_graph::{generators, ops};
///
/// assert_eq!(ops::triangle_count(&generators::complete(4)), 4);
/// assert_eq!(ops::triangle_count(&generators::cycle(5)), 0);
/// ```
#[must_use]
pub fn triangle_count(g: &Graph) -> u64 {
    let mut triangles = 0u64;
    for (u, v) in g.edges() {
        // Count common neighbours w with w > v (each triangle once, at
        // its lexicographically smallest edge).
        let (mut a, mut b) = (g.neighbors(u), g.neighbors(v));
        // Advance both sorted lists.
        while let (Some(&x), Some(&y)) = (a.first(), b.first()) {
            match x.cmp(&y) {
                std::cmp::Ordering::Less => a = &a[1..],
                std::cmp::Ordering::Greater => b = &b[1..],
                std::cmp::Ordering::Equal => {
                    if x > v {
                        triangles += 1;
                    }
                    a = &a[1..];
                    b = &b[1..];
                }
            }
        }
    }
    triangles
}

/// Global clustering coefficient: `3·triangles / number of wedges`
/// (`None` when the graph has no wedge, i.e. no node of degree ≥ 2).
///
/// Small-world workloads ([`generators::watts_strogatz`]) are
/// characterised by a high value at low rewiring; `G(n, p)` sits near `p`.
///
/// [`generators::watts_strogatz`]: crate::generators::watts_strogatz
#[must_use]
pub fn global_clustering(g: &Graph) -> Option<f64> {
    let wedges: u64 = g
        .nodes()
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        return None;
    }
    Some(3.0 * triangle_count(g) as f64 / wedges as f64)
}

/// Local clustering coefficient of `v`: the edge density among its
/// neighbours (`None` for degree below 2).
///
/// # Panics
///
/// Panics if `v` is out of range.
#[must_use]
pub fn local_clustering(g: &Graph, v: NodeId) -> Option<f64> {
    let nbrs = g.neighbors(v);
    let d = nbrs.len();
    if d < 2 {
        return None;
    }
    let mut links = 0usize;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if g.has_edge(a, b) {
                links += 1;
            }
        }
    }
    Some(2.0 * links as f64 / (d * (d - 1)) as f64)
}

/// Graph diameter: the largest finite BFS distance, or `None` for a
/// disconnected or empty graph.
#[must_use]
pub fn diameter(g: &Graph) -> Option<u32> {
    if g.is_empty() || !is_connected(g) {
        return None;
    }
    let mut best = 0;
    for v in g.nodes() {
        for d in bfs_distances(g, v).into_iter().flatten() {
            best = best.max(d);
        }
    }
    Some(best)
}

/// The line graph `L(g)`: one node per edge of `g`, with two nodes adjacent
/// exactly when the corresponding edges of `g` share an endpoint.
///
/// Returns the line graph together with the edge list that defines the node
/// numbering: node `i` of `L(g)` corresponds to `edges[i] = (u, v)` with
/// `u < v`, in the order produced by [`Graph::edges`]. An independent set of
/// `L(g)` is a matching of `g`, and a *maximal* independent set of `L(g)` is
/// a *maximal* matching of `g` — the classical reduction that turns any MIS
/// algorithm into a maximal-matching algorithm.
///
/// # Examples
///
/// ```
/// use mis_graph::{generators, ops};
///
/// let g = generators::path(4); // edges 0-1, 1-2, 2-3
/// let (lg, edges) = ops::line_graph(&g);
/// assert_eq!(lg.node_count(), 3);
/// assert_eq!(lg.edge_count(), 2); // 0-1 and 1-2 share node 1; 1-2 and 2-3 share node 2
/// assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
/// ```
#[must_use]
pub fn line_graph(g: &Graph) -> (Graph, Vec<(NodeId, NodeId)>) {
    let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let m = edges.len();
    // For each vertex of g, collect the indices of its incident edges; every
    // pair of edges incident to the same vertex is adjacent in L(g).
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); g.node_count()];
    for (i, &(u, v)) in edges.iter().enumerate() {
        let id = u32::try_from(i).expect("edge id overflows u32");
        incident[u as usize].push(id);
        incident[v as usize].push(id);
    }
    let mut builder = GraphBuilder::new(m);
    for list in &incident {
        for (a, &i) in list.iter().enumerate() {
            for &j in &list[a + 1..] {
                builder.add_canonical_edge_unchecked(i.min(j), i.max(j));
            }
        }
    }
    (builder.build(), edges)
}

/// The cartesian product `g □ h`: node set `V(g) × V(h)`, with `(u, a)`
/// adjacent to `(v, b)` when either `u = v` and `ab ∈ E(h)`, or `a = b` and
/// `uv ∈ E(g)`.
///
/// Node `(u, a)` is numbered `u * h.node_count() + a`. The product
/// `g □ K_{Δ+1}` is the classical Luby reduction from `(Δ+1)`-colouring to
/// MIS: a maximal independent set of the product assigns every node of `g`
/// exactly one colour, and adjacent nodes get distinct colours.
///
/// # Examples
///
/// ```
/// use mis_graph::{generators, ops};
///
/// let p2 = generators::path(2);
/// let square = ops::cartesian_product(&p2, &p2);
/// assert_eq!(square.node_count(), 4);
/// assert_eq!(square.edge_count(), 4); // C4
/// ```
#[must_use]
pub fn cartesian_product(g: &Graph, h: &Graph) -> Graph {
    let hn = h.node_count() as NodeId;
    let mut builder = GraphBuilder::new(g.node_count() * h.node_count());
    for u in g.nodes() {
        for (a, b) in h.edges() {
            builder.add_canonical_edge_unchecked(u * hn + a, u * hn + b);
        }
    }
    for (u, v) in g.edges() {
        for a in h.nodes() {
            builder.add_canonical_edge_unchecked(u * hn + a, v * hn + a);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn components_of_clique_union() {
        let g = generators::disjoint_cliques(&[3, 2]);
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn connectivity_of_classics() {
        assert!(is_connected(&generators::complete(10)));
        assert!(is_connected(&generators::path(10)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(is_connected(&Graph::empty(0)));
        assert!(!is_connected(&Graph::empty(2)));
    }

    #[test]
    fn induced_subgraph_of_cycle_is_path() {
        let g = generators::cycle(6);
        let sub = induced_subgraph(&g, &[0, 1, 2, 3]);
        assert_eq!(sub.node_count(), 4);
        assert_eq!(sub.edge_count(), 3); // 0-1, 1-2, 2-3; cycle edge 5-0 cut
    }

    #[test]
    fn induced_subgraph_relabels_in_order() {
        let g = generators::path(4); // 0-1-2-3
        let sub = induced_subgraph(&g, &[3, 2]);
        assert_eq!(sub.node_count(), 2);
        assert!(sub.has_edge(0, 1)); // 3-2 became 0-1
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn induced_subgraph_rejects_duplicates() {
        let g = generators::path(3);
        let _ = induced_subgraph(&g, &[0, 0]);
    }

    #[test]
    fn union_shifts_labels() {
        let u = disjoint_union(&[generators::complete(3), generators::path(3)]);
        assert_eq!(u.node_count(), 6);
        assert_eq!(u.edge_count(), 3 + 2);
        assert!(u.has_edge(0, 2));
        assert!(u.has_edge(3, 4));
        assert!(!u.has_edge(2, 3));
    }

    #[test]
    fn union_of_nothing_is_empty() {
        let u = disjoint_union(&[]);
        assert!(u.is_empty());
    }

    #[test]
    fn complement_involution() {
        let g = generators::path(5);
        let cc = complement(&complement(&g));
        assert_eq!(cc, g);
    }

    #[test]
    fn complement_of_complete_is_empty() {
        let g = generators::complete(6);
        assert_eq!(complement(&g).edge_count(), 0);
    }

    #[test]
    fn degree_histogram_star() {
        let g = generators::star(5);
        let h = degree_histogram(&g);
        assert_eq!(h, vec![0, 4, 0, 0, 1]);
        assert!(degree_histogram(&Graph::empty(0)).is_empty());
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = generators::path(4);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn bfs_unreachable_is_none() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], None);
    }

    #[test]
    fn triangle_counts() {
        assert_eq!(triangle_count(&generators::complete(3)), 1);
        assert_eq!(triangle_count(&generators::complete(5)), 10);
        assert_eq!(triangle_count(&generators::cycle(4)), 0);
        assert_eq!(triangle_count(&generators::star(6)), 0);
        assert_eq!(triangle_count(&generators::wheel(6)), 5);
        assert_eq!(triangle_count(&Graph::empty(3)), 0);
    }

    #[test]
    fn global_clustering_values() {
        assert_eq!(global_clustering(&generators::complete(5)), Some(1.0));
        assert_eq!(global_clustering(&generators::cycle(6)), Some(0.0));
        assert_eq!(global_clustering(&Graph::empty(4)), None);
        // A small-world lattice has high clustering.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let ws = generators::watts_strogatz(60, 6, 0.0, &mut rng);
        assert!(global_clustering(&ws).unwrap() > 0.4);
        use rand::SeedableRng as _;
    }

    #[test]
    fn local_clustering_values() {
        let g = generators::complete(4);
        assert_eq!(local_clustering(&g, 0), Some(1.0));
        let path = generators::path(3);
        assert_eq!(local_clustering(&path, 1), Some(0.0));
        assert_eq!(local_clustering(&path, 0), None); // degree 1

        // Wheel hub: neighbours form a cycle => density 2/(n-2).
        let w = generators::wheel(7);
        let hub = local_clustering(&w, 0).unwrap();
        assert!((hub - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn line_graph_of_path_is_shorter_path() {
        let g = generators::path(5);
        let (lg, edges) = line_graph(&g);
        assert_eq!(lg.node_count(), 4);
        assert_eq!(lg.edge_count(), 3);
        assert_eq!(edges.len(), 4);
        assert_eq!(diameter(&lg), Some(3));
    }

    #[test]
    fn line_graph_of_star_is_complete() {
        let g = generators::star(6); // K_{1,5}: all edges share the hub
        let (lg, _) = line_graph(&g);
        assert_eq!(lg.node_count(), 5);
        assert_eq!(lg.edge_count(), 10); // K5
    }

    #[test]
    fn line_graph_of_triangle_is_triangle() {
        let g = generators::complete(3);
        let (lg, _) = line_graph(&g);
        assert_eq!(lg.node_count(), 3);
        assert_eq!(lg.edge_count(), 3);
    }

    #[test]
    fn line_graph_of_edgeless_graph_is_empty() {
        let (lg, edges) = line_graph(&Graph::empty(4));
        assert!(lg.is_empty());
        assert!(edges.is_empty());
    }

    #[test]
    fn line_graph_edge_count_formula() {
        // |E(L(G))| = sum_v C(deg v, 2).
        let g = generators::wheel(8);
        let (lg, edges) = line_graph(&g);
        assert_eq!(edges.len(), g.edge_count());
        let expected: usize = g.nodes().map(|v| g.degree(v) * (g.degree(v) - 1) / 2).sum();
        assert_eq!(lg.edge_count(), expected);
    }

    #[test]
    fn cartesian_product_of_paths_is_grid() {
        let p3 = generators::path(3);
        let p4 = generators::path(4);
        let prod = cartesian_product(&p3, &p4);
        let grid = generators::grid2d(3, 4);
        assert_eq!(prod.node_count(), grid.node_count());
        assert_eq!(prod.edge_count(), grid.edge_count());
        assert_eq!(prod, grid);
    }

    #[test]
    fn cartesian_product_degrees_add() {
        let g = generators::cycle(5);
        let h = generators::complete(4);
        let prod = cartesian_product(&g, &h);
        assert_eq!(prod.node_count(), 20);
        for v in prod.nodes() {
            assert_eq!(prod.degree(v), 2 + 3);
        }
    }

    #[test]
    fn cartesian_product_with_single_node_is_identity() {
        let g = generators::wheel(6);
        let prod = cartesian_product(&g, &Graph::empty(1));
        assert_eq!(prod, g);
    }

    #[test]
    fn cartesian_product_with_empty_graph_is_empty() {
        let g = generators::path(3);
        let prod = cartesian_product(&g, &Graph::empty(0));
        assert!(prod.is_empty());
    }

    #[test]
    fn diameters() {
        assert_eq!(diameter(&generators::path(5)), Some(4));
        assert_eq!(diameter(&generators::cycle(6)), Some(3));
        assert_eq!(diameter(&generators::complete(4)), Some(1));
        assert_eq!(diameter(&Graph::empty(2)), None);
        assert_eq!(diameter(&Graph::empty(0)), None);
    }
}
