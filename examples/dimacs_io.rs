//! Interop: solve MIS on a DIMACS instance from disk.
//!
//! Downstream users usually have graphs in the DIMACS `edge` format of
//! the clique/colouring challenges. This example writes a generated
//! instance to a temporary file, reads it back with the DIMACS parser,
//! runs the paper's feedback algorithm, and prints the selection plus
//! where the DOT rendering was written — the full pipeline from file
//! format to verified MIS.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example dimacs_io
//! ```

use std::fs;

use beeping_mis::core::{solve_mis, verify, Algorithm};
use beeping_mis::graph::{generators, io};
use rand::{rngs::SmallRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stand-in for the user's own instance file.
    let mut rng = SmallRng::seed_from_u64(11);
    let original = generators::gnp(120, 0.08, &mut rng);
    let dir = std::env::temp_dir();
    let instance = dir.join("beeping_mis_example.col");
    fs::write(&instance, io::to_dimacs(&original))?;
    println!("wrote DIMACS instance to {}", instance.display());

    // The part a downstream user starts from: a path to a .col file.
    let text = fs::read_to_string(&instance)?;
    let graph = io::parse_dimacs(&text)?;
    assert_eq!(graph, original);
    println!(
        "parsed: {} nodes, {} edges, Δ = {}",
        graph.node_count(),
        graph.edge_count(),
        graph.max_degree()
    );

    let result = solve_mis(&graph, &Algorithm::feedback(), 2013)?;
    verify::check_mis(&graph, result.mis())?;
    println!(
        "MIS of {} nodes in {} rounds ({:.2} beeps/node)",
        result.mis().len(),
        result.rounds(),
        result.mean_beeps_per_node()
    );

    let dot = dir.join("beeping_mis_example.dot");
    fs::write(&dot, io::to_dot(&graph, result.mis()))?;
    println!(
        "DOT rendering (MIS highlighted) written to {} — try: dot -Tsvg",
        dot.display()
    );
    Ok(())
}
