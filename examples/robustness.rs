//! §6 robustness: the feedback constants are not magic numbers.
//!
//! Varies the up/down factors and initial probabilities — including
//! per-node random ones — and shows the round count barely moves while
//! every run stays a verified MIS.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example robustness
//! ```

use beeping_mis::beeping::rng::{node_seed, splitmix64, trial_seed};
use beeping_mis::beeping::{FnFactory, SimConfig, Simulator};
use beeping_mis::core::{verify, FeedbackConfig, FeedbackProcess};
use beeping_mis::graph::generators;
use beeping_mis::stats::OnlineStats;
use rand::{rngs::SmallRng, SeedableRng};

const N: usize = 250;
const TRIALS: u64 = 20;

fn measure(name: &str, make_config: impl Fn(u32) -> FeedbackConfig + Copy) {
    let mut rounds = OnlineStats::new();
    let mut beeps = OnlineStats::new();
    for trial in 0..TRIALS {
        let mut rng = SmallRng::seed_from_u64(trial);
        let g = generators::gnp(N, 0.5, &mut rng);
        let factory = FnFactory(move |v, _, _: &_| FeedbackProcess::new(make_config(v)));
        let sim_seed = trial_seed(trial, 1);
        let outcome = Simulator::new(&g, &factory, sim_seed, SimConfig::default()).run();
        assert!(outcome.terminated());
        verify::check_mis(&g, &outcome.mis()).expect("robust variants stay correct");
        rounds.push(f64::from(outcome.rounds()));
        beeps.push(outcome.metrics().mean_beeps_per_node());
    }
    println!(
        "{name:<42} {:>6.1} ± {:<5.1} {:>7.2}",
        rounds.mean(),
        rounds.std_dev(),
        beeps.mean()
    );
}

fn main() {
    println!("feedback variants on G({N}, ½), {TRIALS} trials each\n");
    println!("{:<42} {:>13} {:>8}", "variant", "rounds", "beeps");
    let base = FeedbackConfig::default();
    measure("paper default (×2 / ÷2, p₀ = ½)", move |_| base);
    for gamma in [1.25f64, 1.5, 3.0, 4.0] {
        measure(&format!("symmetric factor {gamma}"), move |_| {
            base.with_factors(gamma, gamma)
        });
    }
    measure("asymmetric ×2 / ÷4", move |_| base.with_factors(2.0, 4.0));
    measure("initial p₀ = 1/16", move |_| {
        base.with_initial_p(1.0 / 16.0)
    });
    measure("per-node random factor ∈ [1.3, 4]", move |v| {
        let u = (splitmix64(node_seed(9, v)) >> 11) as f64 / (1u64 << 53) as f64;
        base.with_factors(1.3 + 2.7 * u, 1.3 + 2.7 * u)
    });
    println!(
        "\nAll variants terminate in O(log n)-scale rounds and pass MIS \
         verification — the §6 robustness claim."
    );
}
