//! Theorem 1 live: global schedules stall on mixed clique sizes.
//!
//! The lower-bound family — many disjoint cliques of *different* sizes —
//! defeats any preset probability sequence: small cliques want high
//! probabilities, large cliques want low ones, and a global sequence must
//! sweep through all scales again and again. Local feedback tunes each
//! clique independently.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example lower_bound_family
//! ```

use beeping_mis::beeping::rng::trial_seed;
use beeping_mis::core::{solve_mis, Algorithm};
use beeping_mis::graph::generators;
use beeping_mis::stats::OnlineStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Theorem 1 family: m copies each of K_1 … K_m\n");
    println!(
        "{:>4} {:>7} {:>16} {:>16} {:>9}",
        "m", "nodes", "sweep rounds", "feedback rounds", "ratio"
    );
    for m in [4, 8, 12, 16, 20] {
        let g = generators::theorem1_family(m);
        let mut sweep = OnlineStats::new();
        let mut feedback = OnlineStats::new();
        for seed in 0..20 {
            sweep.push(f64::from(
                solve_mis(&g, &Algorithm::sweep(), seed)?.rounds(),
            ));
            feedback.push(f64::from(
                solve_mis(&g, &Algorithm::feedback(), trial_seed(seed, 1))?.rounds(),
            ));
        }
        println!(
            "{m:>4} {:>7} {:>9.1} ± {:<4.1} {:>9.1} ± {:<4.1} {:>8.2}×",
            g.node_count(),
            sweep.mean(),
            sweep.std_dev(),
            feedback.mean(),
            feedback.std_dev(),
            sweep.mean() / feedback.mean()
        );
    }
    println!(
        "\nThe ratio grows with the family size: the sweep pays Ω(log² n) \
         while feedback stays O(log n)."
    );
    Ok(())
}
