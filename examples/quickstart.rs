//! Quickstart: reproduce Figure 1A of the paper.
//!
//! Selects a maximal independent set on a random 20-node graph with the
//! feedback algorithm, verifies it, and prints the result plus a Graphviz
//! DOT rendering with the MIS highlighted.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use beeping_mis::core::{solve_mis, verify, Algorithm};
use beeping_mis::graph::{generators, io};
use rand::{rngs::SmallRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 1A: a random undirected graph with 20 nodes.
    let mut rng = SmallRng::seed_from_u64(20);
    let graph = generators::gnp(20, 0.5, &mut rng);
    println!(
        "graph: {} nodes, {} edges (max degree {})",
        graph.node_count(),
        graph.edge_count(),
        graph.max_degree()
    );

    // Run the feedback algorithm (Table 1 of the paper).
    let result = solve_mis(&graph, &Algorithm::feedback(), 7)?;
    verify::check_mis(&graph, result.mis())?;

    println!(
        "selected MIS {:?} in {} rounds ({:.2} beeps/node)",
        result.mis(),
        result.rounds(),
        result.mean_beeps_per_node()
    );

    // Compare against the trivial sequential scan of the introduction.
    let greedy = verify::greedy_mis(&graph);
    println!("sequential greedy would pick {greedy:?}");

    // Render for `dot -Tpng`.
    println!("\nGraphviz rendering (MIS nodes filled):\n");
    println!("{}", io::to_dot(&graph, result.mis()));
    Ok(())
}
