//! Head-to-head: feedback vs the classical MIS field.
//!
//! Runs every implemented algorithm — the paper's feedback rule, both Afek
//! et al. global schedules, Luby in both forms, and Métivier's bit-duel —
//! on one shared random graph and prints rounds, MIS size and
//! bits-per-channel side by side.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example algorithm_race
//! ```

use beeping_mis::baselines::{
    LubyMarkingFactory, LubyPriorityFactory, MessageSimulator, MetivierFactory,
};
use beeping_mis::core::{solve_mis, verify, Algorithm};
use beeping_mis::graph::generators;
use rand::{rngs::SmallRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(5);
    let g = generators::gnp(150, 0.5, &mut rng);
    println!(
        "workload: G(150, ½) — {} edges, max degree {}\n",
        g.edge_count(),
        g.max_degree()
    );
    println!(
        "{:<26} {:>7} {:>9} {:>14}",
        "algorithm", "rounds", "MIS size", "bits/channel"
    );

    // Beeping algorithms.
    for (name, algo) in [
        ("feedback (paper)", Algorithm::feedback()),
        ("sweep (DISC'11)", Algorithm::sweep()),
        ("science (Science'11)", Algorithm::science()),
    ] {
        let r = solve_mis(&g, &algo, 42)?;
        let (bits, _) = r.outcome().metrics().channel_bit_stats(&g);
        println!(
            "{name:<26} {:>7} {:>9} {:>14.1}",
            r.rounds(),
            r.mis().len(),
            bits
        );
    }

    // Message-passing baselines.
    let luby_p = MessageSimulator::new(&g, &LubyPriorityFactory::new(), 42).run(100_000);
    let luby_m = MessageSimulator::new(&g, &LubyMarkingFactory::new(), 42).run(100_000);
    let metivier = MessageSimulator::new(&g, &MetivierFactory::new(), 42).run(100_000);
    for (name, outcome) in [
        ("Luby priority", &luby_p),
        ("Luby marking", &luby_m),
        ("Métivier bit-duel", &metivier),
    ] {
        verify::check_mis(&g, &outcome.mis())?;
        println!(
            "{name:<26} {:>7} {:>9} {:>14.1}",
            outcome.rounds(),
            outcome.mis().len(),
            outcome.metrics().mean_bits_per_channel(g.edge_count())
        );
    }

    // Sequential anchor.
    let greedy = verify::greedy_mis(&g);
    println!(
        "{:<26} {:>7} {:>9} {:>14}",
        "greedy (sequential)",
        "-",
        greedy.len(),
        "-"
    );

    println!(
        "\nfeedback matches Luby's round count with one-bit messages and \
         constant bits per channel."
    );
    Ok(())
}
