//! Clusterhead election in an ad-hoc wireless sensor network.
//!
//! §6 of the paper highlights ad-hoc sensor networks as a natural home for
//! beeping MIS: radios that can only emit/detect a carrier wave (one bit),
//! no identifiers, no knowledge of the network size. The MIS members
//! become clusterheads; every sensor is within one hop of a clusterhead
//! and no two clusterheads interfere.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```

use beeping_mis::core::{solve_mis, verify, Algorithm};
use beeping_mis::graph::generators;
use rand::{rngs::SmallRng, SeedableRng};

const SENSORS: usize = 180;
const RADIO_RANGE: f64 = 0.13;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(44);
    let (graph, positions) =
        generators::random_geometric_with_positions(SENSORS, RADIO_RANGE, &mut rng);
    println!(
        "deployed {SENSORS} sensors with radio range {RADIO_RANGE}: \
         {} links, mean degree {:.1}",
        graph.edge_count(),
        graph.mean_degree()
    );

    let result = solve_mis(&graph, &Algorithm::feedback(), 99)?;
    verify::check_mis(&graph, result.mis())?;
    let heads: std::collections::HashSet<_> = result.mis().iter().copied().collect();
    println!(
        "elected {} clusterheads in {} rounds with {:.2} beeps/sensor \
         (max {} at any sensor)\n",
        heads.len(),
        result.rounds(),
        result.mean_beeps_per_node(),
        result.outcome().metrics().max_beeps_per_node(),
    );

    // Render the unit square: '#' clusterhead, '.' covered sensor.
    const GRID: usize = 36;
    let mut canvas = vec![vec![' '; GRID]; GRID / 2];
    for (i, &(x, y)) in positions.iter().enumerate() {
        let col = ((x * GRID as f64) as usize).min(GRID - 1);
        let row = ((y * (GRID / 2) as f64) as usize).min(GRID / 2 - 1);
        let glyph = if heads.contains(&(i as u32)) {
            '#'
        } else {
            '.'
        };
        // Clusterheads win the cell.
        if canvas[row][col] != '#' {
            canvas[row][col] = glyph;
        }
    }
    println!("deployment map ('#' = clusterhead):");
    for row in canvas {
        println!("  |{}|", row.iter().collect::<String>());
    }

    // Per-cluster accounting: how many sensors each head serves.
    let mut served = vec![0usize; graph.node_count()];
    for v in graph.nodes() {
        if heads.contains(&v) {
            continue;
        }
        if let Some(&head) = graph.neighbors(v).iter().find(|u| heads.contains(u)) {
            served[head as usize] += 1;
        }
    }
    let busiest = result
        .mis()
        .iter()
        .map(|&h| served[h as usize])
        .max()
        .unwrap_or(0);
    println!("\nbusiest clusterhead serves {busiest} sensors");
    Ok(())
}
