//! Watch the feedback algorithm run, round by round.
//!
//! Uses the simulator's stepping API to print the state of every node on a
//! small cycle after each round: its status, whether it beeped, and its
//! current beeping probability — the lateral-inhibition dynamics of the
//! paper made visible.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example visualize_rounds
//! ```

use beeping_mis::beeping::{NodeStatus, SimConfig, Simulator};
use beeping_mis::core::{verify, FeedbackFactory};
use beeping_mis::graph::generators;

fn main() {
    let graph = generators::cycle(16);
    println!("feedback MIS selection on C₁₆, one line per round\n");
    println!("legend: '*' joined MIS, 'o' covered, '!' beeped, '.' silent\n");

    let mut stepper =
        Simulator::new(&graph, &FeedbackFactory::new(), 2013, SimConfig::default()).into_stepper();
    while !stepper.is_done() {
        stepper.step();
        let view = stepper.last_round_view();
        let row: String = view
            .status
            .iter()
            .enumerate()
            .map(|(v, status)| match status {
                NodeStatus::InMis => '*',
                NodeStatus::Covered => 'o',
                NodeStatus::Asleep => 'z',
                NodeStatus::Active => {
                    if view.beeped[v] {
                        '!'
                    } else {
                        '.'
                    }
                }
            })
            .collect();
        let mean_p: f64 = {
            let active: Vec<f64> = view
                .probabilities
                .iter()
                .copied()
                .filter(|&p| p > 0.0)
                .collect();
            if active.is_empty() {
                0.0
            } else {
                active.iter().sum::<f64>() / active.len() as f64
            }
        };
        println!(
            "round {:>2}  [{}]  active {:>2}  mean p {:.3}",
            view.round,
            row,
            stepper.active_count(),
            mean_p
        );
    }

    let outcome = stepper.finish();
    let mis = outcome.mis();
    verify::check_mis(&graph, &mis).expect("valid MIS");
    println!(
        "\ndone in {} rounds: MIS {:?} ({} nodes)",
        outcome.rounds(),
        mis,
        mis.len()
    );
}
