//! MIS as a building block: matching, colouring and a routing backbone.
//!
//! The paper's conclusion notes that MIS selection “can also be used as a
//! fundamental building block in algorithms for many other problems in
//! distributed computing”. This example elects, on one ad-hoc wireless
//! network, (1) a maximal matching for pairwise link scheduling, (2) a
//! `(Δ+1)`-colouring for TDMA slot assignment, and (3) a connected
//! dominating backbone for routing — each powered solely by the paper's
//! feedback beeping MIS.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example building_blocks
//! ```

use beeping_mis::apps::{clustering, coloring, dominating, matching};
use beeping_mis::core::Algorithm;
use beeping_mis::graph::{generators, ops};
use rand::{rngs::SmallRng, SeedableRng};

const SENSORS: usize = 150;
const RADIO_RANGE: f64 = 0.16;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(2013);
    let graph = loop {
        let g = generators::random_geometric(SENSORS, RADIO_RANGE, &mut rng);
        if ops::is_connected(&g) {
            break g;
        }
    };
    println!(
        "network: {SENSORS} sensors, {} links, Δ = {}, mean degree {:.1}\n",
        graph.edge_count(),
        graph.max_degree(),
        graph.mean_degree()
    );
    let algorithm = Algorithm::feedback();

    // 1. Link scheduling: a maximal matching lets matched pairs exchange
    //    simultaneously without interference at either endpoint.
    let m = matching::maximal_matching(&graph, &algorithm, 1)?;
    matching::check_matching(&graph, m.edges())?;
    let covered = m.covered(graph.node_count()).iter().filter(|&&c| c).count();
    println!(
        "matching: {} link pairs active ({covered}/{SENSORS} sensors busy), \
         elected in {} beeping rounds on the line graph",
        m.len(),
        m.rounds()
    );

    // 2. TDMA slots: a proper (Δ+1)-colouring gives every sensor a slot in
    //    which no neighbour transmits.
    let tdma = coloring::product_coloring(&graph, &algorithm, 2)?;
    coloring::check_coloring(&graph, tdma.colors())?;
    println!(
        "tdma: {} slots assigned (palette bound Δ+1 = {}), one product-MIS \
         run of {} rounds",
        tdma.color_count(),
        graph.max_degree() + 1,
        tdma.rounds()
    );
    let mut slot_load: Vec<usize> = (0..tdma.color_count())
        .map(|c| tdma.class(c).len())
        .collect();
    slot_load.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "      busiest slots: {:?} sensors",
        &slot_load[..slot_load.len().min(5)]
    );

    // 3. Routing backbone: clusterheads (the MIS) plus connectors form a
    //    connected dominating set every sensor can reach in one hop.
    let clusters = clustering::cluster_via_mis(&graph, &algorithm, 3)?;
    clustering::check_clustering(&graph, &clusters)?;
    let cds = dominating::connected_dominating_set(&graph, &algorithm, 3)?;
    assert!(dominating::is_connected_dominating_set(
        &graph,
        &cds.nodes()
    ));
    println!(
        "backbone: {} clusterheads + {} connectors = {} backbone nodes \
         ({:.0}% of the network), largest cluster {} sensors, {} rounds",
        cds.heads().len(),
        cds.connectors().len(),
        cds.len(),
        100.0 * cds.len() as f64 / SENSORS as f64,
        clusters.max_cluster_size(),
        cds.rounds()
    );

    println!(
        "\nall three structures verified; every election used only one-bit \
         beeps and the paper's local feedback rule"
    );
    Ok(())
}
