//! Sensory-organ-precursor selection in the fly epithelium.
//!
//! The biological system that inspired the paper (Figure 1B): cells of a
//! hexagonally packed proneural cluster compete via Notch–Delta lateral
//! inhibition until every cell either becomes an SOP or neighbours one,
//! and no two SOPs touch — exactly an MIS on the hex lattice. The
//! feedback algorithm is the paper's discrete abstraction of that
//! mechanism.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fly_sop
//! ```

use beeping_mis::core::{solve_mis, verify, Algorithm};
use beeping_mis::graph::generators;
use beeping_mis::stats::OnlineStats;

const ROWS: usize = 14;
const COLS: usize = 30;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let epithelium = generators::hex_grid(ROWS, COLS);
    println!(
        "proneural cluster: {ROWS}×{COLS} hexagonally packed cells \
         ({} contacts)\n",
        epithelium.edge_count()
    );

    let result = solve_mis(&epithelium, &Algorithm::feedback(), 2013)?;
    verify::check_mis(&epithelium, result.mis())?;
    let sops: std::collections::HashSet<_> = result.mis().iter().copied().collect();

    // Render the lattice with odd rows shifted, '◉' = SOP.
    println!("differentiated epithelium ('O' = SOP, '.' = epidermal):");
    for r in 0..ROWS {
        let indent = if r % 2 == 1 { " " } else { "" };
        let row: String = (0..COLS)
            .map(|c| {
                if sops.contains(&((r * COLS + c) as u32)) {
                    "O "
                } else {
                    ". "
                }
            })
            .collect();
        println!("  {indent}{row}");
    }

    println!(
        "\n{} SOPs selected in {} rounds — {:.1}% of cells \
         (ideal hexagonal packing: ~25%)",
        sops.len(),
        result.rounds(),
        100.0 * sops.len() as f64 / epithelium.node_count() as f64
    );
    println!(
        "signalling cost: {:.2} beeps/cell on average (Theorem 6: O(1))",
        result.mean_beeps_per_node()
    );

    // The "fine-grained pattern" property: SOP spacing. Every epidermal
    // cell should touch exactly one or a few SOPs, never zero.
    let mut inhibitors = OnlineStats::new();
    for cell in epithelium.nodes() {
        if !sops.contains(&cell) {
            let count = epithelium
                .neighbors(cell)
                .iter()
                .filter(|u| sops.contains(u))
                .count();
            inhibitors.push(count as f64);
        }
    }
    println!(
        "each epidermal cell is inhibited by {:.2} SOPs on average \
         (min {:.0}, max {:.0})",
        inhibitors.mean(),
        inhibitors.min(),
        inhibitors.max()
    );
    assert!(inhibitors.min() >= 1.0, "lateral inhibition left a gap");
    Ok(())
}
