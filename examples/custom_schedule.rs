//! Probe Theorem 1 with your own probability schedule.
//!
//! Theorem 1 says *no* preset sequence escapes Ω(log² n) on the
//! clique-union family. This example lets you test candidate schedules —
//! including ones that look cleverly tuned — and watch them lose to local
//! feedback anyway.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_schedule
//! ```

use beeping_mis::core::{solve_mis, Algorithm, CustomSchedule, TailBehavior};
use beeping_mis::graph::generators;
use beeping_mis::stats::OnlineStats;

fn measure(g: &beeping_mis::graph::Graph, algo: &Algorithm, trials: u64) -> OnlineStats {
    (0..trials)
        .map(|seed| f64::from(solve_mis(g, algo, seed).expect("terminates").rounds()))
        .collect()
}

fn main() {
    let g = generators::theorem1_family(16); // 2176 nodes, cliques K₁…K₁₆
    println!(
        "workload: Theorem 1 family, side 16 ({} nodes, max clique 16)\n",
        g.node_count()
    );

    let candidates: Vec<(&str, Algorithm)> = vec![
        ("feedback (local, adaptive)", Algorithm::feedback()),
        ("DISC'11 sweep", Algorithm::sweep()),
        ("constant p = 1/8", Algorithm::constant(0.125)),
        (
            "geometric ladder ½, ¼, …, 1/64, cycle",
            Algorithm::Custom(CustomSchedule::new(
                (1..=6).map(|e| 0.5f64.powi(e)).collect(),
                TailBehavior::Cycle,
            )),
        ),
        (
            "two-scale alternation ½, 1/16",
            Algorithm::Custom(CustomSchedule::new(
                vec![0.5, 1.0 / 16.0],
                TailBehavior::Cycle,
            )),
        ),
    ];

    println!("{:<38} {:>16}", "schedule", "rounds (20 runs)");
    for (name, algo) in &candidates {
        let stats = measure(&g, algo, 20);
        println!(
            "{name:<38} {:>9.1} ± {:<5.1}",
            stats.mean(),
            stats.std_dev()
        );
    }
    println!(
        "\nEvery preset sequence must revisit each probability scale again \
         and again as cliques of different sizes finish at different times; \
         feedback finds each clique's scale locally and holds it."
    );
}
