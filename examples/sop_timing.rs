//! Why the fly needed stochastic rate change: selection-time statistics.
//!
//! §1 of the paper recounts how Afek et al. selected among in-silico
//! models of SOP determination by comparing selection-*time* statistics
//! with microscopy data — all candidate models produce the same spatial
//! pattern (an MIS), so timing is the only observable that separates
//! them. This example reproduces that analysis on a simulated hexagonal
//! epithelium: run all three accumulation models, print their timing
//! statistics, and draw the selection-time histograms side by side.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example sop_timing
//! ```

use beeping_mis::biology::sop::{run_sop_selection, AccumulationModel, SopParams};
use beeping_mis::core::{solve_mis, Algorithm};
use beeping_mis::graph::generators;
use beeping_mis::stats::{ks_test, Histogram};
use rand::{rngs::SmallRng, SeedableRng};

const SIDE: usize = 9;
const TRIALS: u64 = 25;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tissue = generators::hex_grid(SIDE, SIDE);
    println!(
        "hex epithelium: {} cells, {} contacts (Figure 1B geometry)\n",
        tissue.node_count(),
        tissue.edge_count()
    );

    let mut pooled: Vec<(&'static str, Vec<f64>)> = Vec::new();
    for model in AccumulationModel::all() {
        let mut times = Vec::new();
        let mut collisions = 0u64;
        let mut sops = 0usize;
        for seed in 0..TRIALS {
            let outcome = run_sop_selection(
                &tissue,
                SopParams::for_model(model),
                &mut SmallRng::seed_from_u64(seed),
            );
            assert!(outcome.completed());
            times.extend(outcome.times());
            collisions += outcome.collisions();
            sops += outcome.selected().len();
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        println!(
            "{:<24} mean selection step {:>5.1}, {:>4.1} collisions/trial, \
             {:.1}% of cells become SOPs",
            model.name(),
            mean,
            collisions as f64 / TRIALS as f64,
            100.0 * sops as f64 / (TRIALS as usize * tissue.node_count()) as f64
        );
        let hist = Histogram::from_samples(&times, 12);
        for line in hist.render(40).lines() {
            println!("    {line}");
        }
        println!();
        pooled.push((model.name(), times));
    }

    println!("pairwise two-sample KS (timing alone separates the models):");
    for i in 0..pooled.len() {
        for j in i + 1..pooled.len() {
            let ks = ks_test(&pooled[i].1, &pooled[j].1);
            println!("  {:<24} vs {:<24} {ks}", pooled[i].0, pooled[j].0);
        }
    }

    // The algorithmic abstraction: same pattern class, far fewer steps.
    let result = solve_mis(&tissue, &Algorithm::feedback(), 1)?;
    println!(
        "\nfeedback beeping algorithm on the same tissue: MIS density {:.1}%, \
         {} rounds — the biology's pattern at a fraction of the wall-clock",
        100.0 * result.mis().len() as f64 / tissue.node_count() as f64,
        result.rounds()
    );
    Ok(())
}
