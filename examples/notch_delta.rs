//! From biology to algorithm: Notch–Delta ODEs vs the feedback MIS.
//!
//! Runs the continuous Collier et al. lateral-inhibition model (§2 /
//! Figure 4 of the paper) and the discrete feedback algorithm on the same
//! hexagonal cell sheet, then compares the two “fine-grained patterns”:
//! both must be sets of mutually non-adjacent sender cells covering the
//! tissue.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example notch_delta
//! ```

use beeping_mis::biology::{CollierModel, CollierParams};
use beeping_mis::core::{solve_mis, verify, Algorithm};
use beeping_mis::graph::generators;
use rand::{rngs::SmallRng, SeedableRng};

const ROWS: usize = 8;
const COLS: usize = 14;

fn render(rows: usize, cols: usize, members: &std::collections::HashSet<u32>) -> String {
    let mut out = String::new();
    for r in 0..rows {
        out.push_str("  ");
        if r % 2 == 1 {
            out.push(' ');
        }
        for c in 0..cols {
            out.push(if members.contains(&((r * cols + c) as u32)) {
                'O'
            } else {
                '.'
            });
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tissue = generators::hex_grid(ROWS, COLS);
    println!(
        "hexagonal tissue: {ROWS}×{COLS} cells, {} contacts\n",
        tissue.edge_count()
    );

    // Continuous model: integrate the ODEs to steady state.
    let mut rng = SmallRng::seed_from_u64(4);
    let outcome =
        CollierModel::new(&tissue, CollierParams::default()).run_to_steady_state(&mut rng);
    let senders: std::collections::HashSet<u32> = outcome.high_delta_cells().into_iter().collect();
    println!(
        "Collier ODE model: {} ({} integration steps, ambiguous fates {:.1}%)",
        outcome,
        outcome.steps(),
        outcome.ambiguous_fraction() * 100.0
    );
    println!("{}", render(ROWS, COLS, &senders));

    // Independence check on the continuous pattern.
    let mut adjacent_senders = 0;
    for &s in &senders {
        adjacent_senders += tissue
            .neighbors(s)
            .iter()
            .filter(|u| senders.contains(u))
            .count();
    }
    println!("adjacent sender pairs in the ODE pattern: {adjacent_senders}");

    // Discrete abstraction: the paper's feedback algorithm.
    let result = solve_mis(&tissue, &Algorithm::feedback(), 4)?;
    verify::check_mis(&tissue, result.mis())?;
    let mis: std::collections::HashSet<u32> = result.mis().iter().copied().collect();
    println!(
        "\nfeedback algorithm: {} SOPs in {} rounds, {:.2} beeps/cell",
        mis.len(),
        result.rounds(),
        result.mean_beeps_per_node()
    );
    println!("{}", render(ROWS, COLS, &mis));

    println!(
        "pattern densities — ODE: {:.1}% senders, algorithm: {:.1}% SOPs \
         (both in the fine-grained-pattern band; exact sets differ because \
         both processes are symmetry-breaking)",
        100.0 * senders.len() as f64 / tissue.node_count() as f64,
        100.0 * mis.len() as f64 / tissue.node_count() as f64,
    );
    Ok(())
}
