//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This build environment cannot fetch crates, so the workspace vendors the
//! subset of criterion's API its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark runs a
//! short warm-up followed by a fixed number of timed samples and prints
//! `name ... median min..max` per benchmark. There is no statistical
//! analysis, plotting, or baseline comparison — swap the real crate back in
//! for those.
//!
//! Passing `--quick` (or setting `sample_size(1)`) runs a single sample,
//! which keeps `cargo bench` usable as a smoke test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's identity barrier.
pub use std::hint::black_box;

/// Top-level benchmark driver; one per `criterion_group!` target function.
pub struct Criterion {
    sample_size: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--quick" || a == "--test");
        Self {
            sample_size: if quick { 1 } else { 10 },
            quick,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            quick: self.quick,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let size = self.sample_size;
        run_benchmark(&name.into(), size, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    quick: bool,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    /// `--quick` mode overrides this and always runs a single sample.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        if !self.quick {
            self.sample_size = n;
        }
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group. (The stand-in prints results eagerly, so this is a
    /// no-op kept for API compatibility.)
    pub fn finish(self) {}
}

/// Identifies one benchmark: a function name plus an optional parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { label: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Passed to benchmark closures; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, once per sample, after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!("{label:<50} median {median:>10.2?}  range {min:.2?}..{max:.2?}");
}

/// Declares a benchmark group target function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a benchmark binary, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion {
            sample_size: 3,
            quick: false,
        };
        let mut calls = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        // one warm-up + three samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_sample_size_sets_count() {
        let mut c = Criterion {
            sample_size: 10,
            quick: false,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &5u32, |b, &x| {
            b.iter(|| calls += x);
        });
        group.finish();
        // one warm-up + two samples, each adding 5
        assert_eq!(calls, 15);
    }

    #[test]
    fn quick_mode_overrides_sample_size() {
        let mut c = Criterion {
            sample_size: 1,
            quick: true,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(30);
        let mut calls = 0u32;
        group.bench_function("f", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // one warm-up + one sample, despite the requested 30
        assert_eq!(calls, 2);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
