//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, seedable, non-cryptographic generator.
///
/// Implements xoshiro256++ (Blackman & Vigna), the algorithm the real
/// `rand::rngs::SmallRng` uses on 64-bit platforms: 256 bits of state,
/// period 2^256 − 1, excellent statistical quality for simulation work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro256++ must not start from the all-zero state.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        Self { s }
    }
}

/// The standard generator, aliased to [`SmallRng`] in this offline stand-in.
pub type StdRng = SmallRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_avoids_zero_state() {
        let mut rng = SmallRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn seed_from_u64_spreads_entropy() {
        // Adjacent seeds should give unrelated first outputs.
        let a = SmallRng::seed_from_u64(0).next_u64();
        let b = SmallRng::seed_from_u64(1).next_u64();
        assert_ne!(a, b);
        assert_ne!(a ^ b, 1);
    }
}
