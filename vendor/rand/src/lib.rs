//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This build environment has no network access to a crates registry, so the
//! workspace vendors the small slice of the `rand` 0.9 API it actually uses:
//!
//! - [`rngs::SmallRng`] — a fast, seedable, non-cryptographic generator
//!   (xoshiro256++, the same algorithm the real `SmallRng` uses on 64-bit
//!   targets),
//! - the [`Rng`] extension trait with `random`, `random_bool`,
//!   `random_range` and `random_ratio`,
//! - [`SeedableRng`] with `from_seed` / `seed_from_u64`,
//! - [`seq::SliceRandom`] with `shuffle` / `choose`.
//!
//! Streams are deterministic functions of the seed and stable across runs
//! and platforms, which the reproduction harness depends on. The streams are
//! **not** bit-identical to the real `rand` crate; swapping the real crate
//! back in changes sampled values but not any statistical property the
//! experiments rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// A random number generator: the minimal core every RNG implements.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type, typically a byte array.
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, spreading the 64 bits over the
    /// full seed with SplitMix64 (mirrors the real crate's behaviour).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Creates a generator seeded from another generator.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::seed_from_u64(rng.next_u64())
    }
}

/// SplitMix64: used only to expand small seeds into full RNG state.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from an RNG's raw output.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64,
    isize => next_u64,
);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty as $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(sample_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(sample_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 as u8,
    u16 as u16,
    u32 as u32,
    u64 as u64,
    usize as usize,
    i8 as u8,
    i16 as u16,
    i32 as u32,
    i64 as u64,
    isize as usize,
);

/// Uniform draw from `[0, bound)` via 128-bit widening multiply
/// (Lemire's method, without the rejection step; bias is < 2^-64).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    (((rng.next_u64() as u128) * (bound as u128)) >> 64) as u64
}

macro_rules! impl_sample_range_float {
    ($($t:ty, $raw:ident >> $shift:expr, $mantissa:expr);* $(;)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                let v = self.start + unit * (self.end - self.start);
                // `unit` < 1, but for narrow ranges the interpolation can
                // round up onto the excluded endpoint; clamp just below it
                // (deterministic — no extra draws) to keep `..` half-open.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // Closed interval: draw the unit from [0, 1] *inclusive*
                // (full-mantissa integer over max), so `hi` is reachable —
                // unlike `Standard`, whose unit lives in [0, 1).
                let max = (1u64 << $mantissa) - 1;
                let unit = (rng.$raw() >> $shift) as $t / max as $t;
                // Mirror the half-open impl's guard: fl(hi - lo) can round
                // up, letting the interpolation overshoot `hi` slightly.
                let v = lo + unit * (hi - lo);
                if v > hi {
                    hi
                } else {
                    v
                }
            }
        }
    )*};
}

impl_sample_range_float!(f32, next_u32 >> 8, 24; f64, next_u64 >> 11, 53);

/// User-facing random value generation, mirroring `rand::Rng` (0.9 names).
pub trait Rng: RngCore {
    /// Returns a uniformly distributed value of type `T`
    /// (floats are uniform in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        // Compare against 53-bit output; p == 1.0 must always win.
        p == 1.0 || <f64 as Standard>::sample(self) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "zero denominator");
        assert!(numerator <= denominator, "ratio above one");
        self.random_range(0..denominator) < numerator
    }

    /// Draws one value uniformly from `range`. Panics on empty ranges.
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!((5..10).contains(&rng.random_range(5..10)));
            assert!((0.25..0.75).contains(&rng.random_range(0.25f64..0.75)));
            assert!((0.0..=1.0).contains(&rng.random_range(0.0f64..=1.0)));
            let v: i32 = rng.random_range(-3..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn inclusive_float_range_reaches_both_endpoints() {
        // An all-ones raw draw maps to unit 1.0 and an all-zeros draw to
        // unit 0.0, so both endpoints of `lo..=hi` are reachable — which
        // the [0, 1)-based `Standard` sampler could never give for `hi`.
        struct Fixed(u64);
        impl RngCore for Fixed {
            fn next_u32(&mut self) -> u32 {
                self.0 as u32
            }
            fn next_u64(&mut self) -> u64 {
                self.0
            }
        }
        assert_eq!(Fixed(u64::MAX).random_range(0.0f64..=1.0), 1.0);
        assert_eq!(Fixed(u64::MAX).random_range(2.0f32..=5.0), 5.0);
        assert_eq!(Fixed(0).random_range(0.0f64..=1.0), 0.0);
        assert_eq!(Fixed(0).random_range(2.0f32..=5.0), 2.0);
        // ...while the half-open range must stay below its bound even when
        // interpolation over a 1-ulp range would round up onto it.
        let end = 1.0f64 + f64::EPSILON;
        assert_eq!(Fixed(u64::MAX).random_range(1.0f64..end), 1.0);
        // Degenerate closed ranges must return exactly the endpoint.
        let mut rng = SmallRng::seed_from_u64(9);
        assert_eq!(rng.random_range(1.0f64..=1.0), 1.0);
        assert_eq!(rng.random_range(0.5f32..=0.5), 0.5);
    }

    #[test]
    fn bool_probability_endpoints() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }

    #[test]
    fn random_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_500..=5_500).contains(&hits), "hits={hits}");
    }
}
