//! Sequence-related extensions: shuffling and random element choice.

use crate::{Rng, RngCore};

/// Extension trait adding random operations on slices.
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns one uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not stay in order");
    }

    #[test]
    fn choose_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(12);
        let v = [1, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
