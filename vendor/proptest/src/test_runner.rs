//! Test-execution support: configuration and failure reporting.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Returns a config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Returns the deterministic RNG driving input generation for one property.
///
/// The seed is an FNV-1a hash of the test name — a fixed algorithm rather
/// than std's `DefaultHasher` (whose output may change between Rust
/// releases) — so every property gets an independent input stream that
/// reproduces across runs, platforms, and toolchains.
#[must_use]
pub fn case_rng(test_name: &str) -> SmallRng {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(hash)
}

/// Prints the sampled inputs of the current case if the property panics.
///
/// Created at the top of each generated case; [`case_passed`] consumes it on
/// success, and its `Drop` impl fires only while unwinding from a failure.
///
/// [`case_passed`]: FailureReporter::case_passed
pub struct FailureReporter {
    test_name: &'static str,
    case: u32,
    inputs: String,
}

impl FailureReporter {
    /// Records the context of the case about to run.
    #[must_use]
    pub fn new(test_name: &'static str, case: u32, inputs: String) -> Self {
        Self {
            test_name,
            case,
            inputs,
        }
    }

    /// Marks the case as passed, disarming the `Drop` report.
    pub fn case_passed(self) {}
}

impl Drop for FailureReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: property `{}` failed at case {} with inputs: {}",
                self.test_name,
                self.case,
                self.inputs.trim_end_matches(", "),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn case_rng_is_deterministic_per_name() {
        assert_eq!(case_rng("abc").next_u64(), case_rng("abc").next_u64());
        assert_ne!(case_rng("abc").next_u64(), case_rng("xyz").next_u64());
    }

    #[test]
    fn with_cases_sets_count() {
        assert_eq!(ProptestConfig::with_cases(48).cases, 48);
        assert_eq!(ProptestConfig::default().cases, 256);
    }
}
