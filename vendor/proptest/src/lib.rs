//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! This build environment cannot fetch crates, so the workspace vendors the
//! subset of proptest it uses: the [`proptest!`] macro with a
//! `#![proptest_config(...)]` header, numeric range strategies
//! (`0usize..80`, `0.0f64..=1.0`, …), [`any`]`::<T>()`, and the
//! `prop_assert!` family. Differences from the real crate:
//!
//! - inputs are sampled from a fixed-seed RNG, so failures reproduce
//!   deterministically across runs;
//! - there is **no shrinking** — a failure reports the exact sampled inputs
//!   instead of a minimised case;
//! - only the strategy forms listed above are implemented.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, Just, Strategy};
pub use test_runner::ProptestConfig;

/// Defines property tests: each `fn` item becomes a `#[test]` that samples
/// its arguments from the given strategies for the configured number of
/// cases.
#[macro_export]
macro_rules! proptest {
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident(
            $($arg:ident in $strategy:expr),+ $(,)?
        ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::case_rng(stringify!($name));
            let mut executed: u32 = 0;
            for case in 0..config.cases {
                $(
                    let $arg = $crate::Strategy::sample(&$strategy, &mut rng);
                )+
                let reporter = $crate::test_runner::FailureReporter::new(
                    stringify!($name),
                    case,
                    format!(
                        concat!($(concat!(stringify!($arg), " = {:?}, ")),+),
                        $(&$arg),+
                    ),
                );
                $body
                reporter.case_passed();
                executed += 1;
            }
            // A property that never ran (every case hit `prop_assume!`)
            // asserted nothing — fail loudly instead of passing vacuously.
            assert!(
                executed > 0 || config.cases == 0,
                "property `{}` rejected all {} cases via prop_assume!",
                stringify!($name),
                config.cases,
            );
        }
    )*};
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @with_config ($config) $($rest)* }
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest! {
            @with_config ($crate::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Rejects the current case unless `cond` holds, moving on to the next
/// sampled case. (Real proptest re-samples; this stand-in just skips.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body, reporting the sampled
/// inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}"
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: {left:?}"
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)*);
    }};
}
