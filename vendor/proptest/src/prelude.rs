//! The items a property test file typically imports with one glob.

pub use crate::strategy::{any, Any, Just, Strategy};
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
