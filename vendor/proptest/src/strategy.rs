//! Input-generation strategies.

use rand::rngs::SmallRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy
/// simply samples a value from an RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: core::fmt::Debug;

    /// Samples one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy producing any value of `T`; build with [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

/// Returns a strategy covering the whole domain of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(core::marker::PhantomData)
}

macro_rules! impl_any_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.random()
            }
        }
    )*};
}

impl_any_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// Strategy that always produces a clone of one fixed value.
pub struct Just<T>(pub T);

impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..500 {
            assert!((3..9).contains(&(3usize..9).sample(&mut rng)));
            assert!((0.0..1.0).contains(&(0.0f64..1.0).sample(&mut rng)));
            assert!((1..=5).contains(&(1i32..=5).sample(&mut rng)));
        }
    }

    #[test]
    fn just_returns_its_value() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(Just(42u32).sample(&mut rng), 42);
    }
}
