//! Behavior of the `proptest!` macro expansion itself.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The happy path: strategies sample, assertions run, cases pass.
    #[test]
    fn ranges_and_assertions_work(
        n in 1usize..50,
        x in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        prop_assert!((1..50).contains(&n));
        prop_assert!((0.0..1.0).contains(&x));
        prop_assert_eq!(seed, seed);
        prop_assert_ne!(n, 0);
    }

    /// Partial rejection is fine: surviving cases still assert.
    #[test]
    fn partial_assume_keeps_surviving_cases(n in 0usize..10) {
        prop_assume!(n % 2 == 0);
        prop_assert_eq!(n % 2, 0);
    }

    /// Rejecting every case must fail the test rather than pass vacuously.
    #[test]
    #[should_panic(expected = "rejected all")]
    fn total_rejection_panics(_n in 0usize..10) {
        prop_assume!(false);
    }

    /// A failing property must actually fail (and report its inputs).
    #[test]
    #[should_panic]
    fn failing_property_panics(n in 5usize..10) {
        prop_assert!(n < 5);
    }
}
