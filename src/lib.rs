//! # beeping-mis
//!
//! A full reproduction of *“Feedback from nature: an optimal distributed
//! algorithm for maximal independent set selection”* (Alex Scott, Peter
//! Jeavons & Lei Xu, PODC 2013): the feedback-adaptive beeping MIS
//! algorithm, the global-schedule algorithms of Afek et al. it improves on,
//! classical baselines (Luby, Métivier et al.), a synchronous beeping-model
//! simulator, and the experiment harness that regenerates every figure of
//! the paper.
//!
//! This umbrella crate re-exports the workspace crates under stable module
//! names:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`graph`] | `mis-graph` | CSR graphs, generators, ops, I/O |
//! | [`beeping`] | `mis-beeping` | the beeping-model simulator |
//! | [`core`] | `mis-core` | feedback MIS, global schedules, verification |
//! | [`baselines`] | `mis-baselines` | Luby, Métivier, sequential greedy |
//! | [`apps`] | `mis-apps` | matching, colouring, dominating sets, clustering via MIS |
//! | [`biology`] | `mis-biology` | Notch–Delta lateral-inhibition ODE model |
//! | [`stats`] | `mis-stats` | summaries, fits, tables, plots |
//! | [`experiments`] | `mis-experiments` | per-figure experiment harness |
//! | [`serve`] | `mis-serve` | simulation-as-a-service daemon + client |
//!
//! # Quick start
//!
//! Select a maximal independent set on a random graph with the paper's
//! feedback algorithm:
//!
//! ```
//! use beeping_mis::core::{solve_mis, Algorithm};
//! use beeping_mis::graph::generators::gnp;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(20);
//! let g = gnp(20, 0.5, &mut rng);
//! let result = solve_mis(&g, &Algorithm::feedback(), 7).expect("terminates");
//! assert!(beeping_mis::core::verify::is_maximal_independent_set(
//!     &g,
//!     result.mis()
//! ));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mis_apps as apps;
pub use mis_baselines as baselines;
pub use mis_beeping as beeping;
pub use mis_biology as biology;
pub use mis_core as core;
pub use mis_experiments as experiments;
pub use mis_graph as graph;
pub use mis_serve as serve;
pub use mis_stats as stats;
